//! Semantic totality: every transition the protocol can actually face is
//! defined, within bounds, and a function of the declared count classes.
//!
//! The syntactic totality pass in `fssga-analysis` checks mod-thresh
//! *programs*; this pass checks native protocols over their *reachable*
//! semantics. For every transition computed during exploration it
//! verifies three things:
//!
//! * **no panics** — a transition that panics on a reachable
//!   `(state, coin, multiset)` triple is a partial function
//!   masquerading as total;
//! * **declared query bounds** — the merged [`QueryRecorder`] must stay
//!   within `MAX_THRESHOLD` / `MODULI_LCM` (the same bounds
//!   `compile_protocol` and the α synchronizer rely on);
//! * **count-class functionality** — the result must depend on the
//!   neighbour multiset only through the classes
//!   `(min(μ_q, T), μ_q mod L)` that the declared bounds can express.
//!   Two reachable multisets in the same class mapping to different
//!   next states prove the protocol is *not* the SM function its bounds
//!   claim — a strictly semantic finding no syntactic pass can make.

use std::collections::HashMap;
use std::marker::PhantomData;

use fssga_core::diag::{Diagnostic, Report};
use fssga_engine::view::QueryRecorder;
use fssga_engine::{Protocol, StateSpace};
use fssga_protocols::contract::SemanticContract;

use crate::explore::{Exploration, TransitionCtx, TransitionObserver};
use crate::graphs::NamedGraph;
use crate::witness::{Step, Witness};

const ANALYSIS: &str = "verify-totality";

/// Cap on distinct signatures tracked before sampling stops (memory
/// guard for huge product-state protocols).
const SIG_CAP: usize = 2_000_000;

#[derive(Hash, PartialEq, Eq)]
struct SigKey {
    own: u32,
    coin: u32,
    /// Sparse count classes: `(state, min(count, T), count mod L)` for
    /// each state with nonzero count, sorted by state.
    sig: Vec<(u32, u32, u32)>,
}

struct SigEntry {
    next: u32,
    /// Sparse multiset witness: `(state, count)`.
    counts: Vec<(u32, u32)>,
}

/// A count-class functionality violation: two multisets in the same
/// declared class with different results.
struct SigConflict {
    own: u32,
    coin: u32,
    next_a: u32,
    counts_a: Vec<(u32, u32)>,
    next_b: u32,
    counts_b: Vec<(u32, u32)>,
}

/// The transition observer that accumulates semantic-totality evidence
/// across every explored instance of one protocol.
pub struct TotalityObserver<P: Protocol> {
    sig_map: HashMap<SigKey, SigEntry>,
    conflicts: Vec<SigConflict>,
    conflict_count: usize,
    saturated: bool,
    transitions: u64,
    _ph: PhantomData<P>,
}

impl<P: Protocol> Default for TotalityObserver<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Protocol> TotalityObserver<P> {
    /// A fresh observer.
    pub fn new() -> Self {
        Self {
            sig_map: HashMap::new(),
            conflicts: Vec::new(),
            conflict_count: 0,
            saturated: false,
            transitions: 0,
            _ph: PhantomData,
        }
    }

    /// Total transitions observed.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Distinct `(state, coin, count-class)` signatures observed.
    pub fn distinct_signatures(&self) -> usize {
        self.sig_map.len()
    }
}

impl<P: Protocol> TransitionObserver for TotalityObserver<P> {
    fn observe(&mut self, ctx: TransitionCtx<'_>) {
        self.transitions += 1;
        if self.saturated {
            return;
        }
        let t = P::MAX_THRESHOLD;
        let l = P::MODULI_LCM.max(1);
        let sig: Vec<(u32, u32, u32)> = ctx
            .touched
            .iter()
            .map(|&q| {
                let c = ctx.counts[q as usize];
                (q, c.min(t), c % l)
            })
            .collect();
        let key = SigKey {
            own: ctx.own,
            coin: ctx.coin,
            sig,
        };
        match self.sig_map.get(&key) {
            Some(entry) => {
                if entry.next != ctx.next {
                    self.conflict_count += 1;
                    if self.conflicts.len() < 3 {
                        self.conflicts.push(SigConflict {
                            own: ctx.own,
                            coin: ctx.coin,
                            next_a: entry.next,
                            counts_a: entry.counts.clone(),
                            next_b: ctx.next,
                            counts_b: ctx
                                .touched
                                .iter()
                                .map(|&q| (q, ctx.counts[q as usize]))
                                .collect(),
                        });
                    }
                }
            }
            None => {
                if self.sig_map.len() >= SIG_CAP {
                    self.saturated = true;
                    return;
                }
                self.sig_map.insert(
                    key,
                    SigEntry {
                        next: ctx.next,
                        counts: ctx
                            .touched
                            .iter()
                            .map(|&q| (q, ctx.counts[q as usize]))
                            .collect(),
                    },
                );
            }
        }
    }
}

fn state<P: Protocol>(q: u32) -> String {
    format!("{:?}", P::State::from_index(q as usize))
}

fn multiset<P: Protocol>(counts: &[(u32, u32)]) -> String {
    if counts.is_empty() {
        return "{}".to_string();
    }
    let parts: Vec<String> = counts
        .iter()
        .map(|&(q, c)| format!("{}×{}", c, state::<P>(q)))
        .collect();
    format!("{{{}}}", parts.join(", "))
}

/// Per-instance checks: reports a transition panic (with a replayable
/// witness schedule) and notes budget truncation for contracts whose
/// claims do not already escalate it.
pub fn check_exploration<P: Protocol>(
    contract: &SemanticContract,
    graph: &NamedGraph,
    init: &[u32],
    ex: &Exploration,
    report: &mut Report,
) {
    if let Some(p) = &ex.panic {
        let mut schedule = ex.schedule_to(p.config);
        schedule.push(Step::Activate {
            node: p.node,
            coin: p.coin,
        });
        let w = Witness {
            graph_name: graph.name.clone(),
            n: graph.graph.n(),
            edges: graph.graph.edges().collect(),
            init: init.iter().map(|&q| state::<P>(q)).collect(),
            schedule,
            outcome: format!(
                "the final activation panics: {} (from configuration {})",
                p.message,
                crate::explore::format_config::<P>(&ex.configs[p.config])
            ),
        };
        report.push(
            Diagnostic::error(
                ANALYSIS,
                contract.name,
                format!(
                    "transition panics on a reachable configuration of {}",
                    graph.name
                ),
            )
            .with_witness(w.to_string()),
        );
    }
    if ex.truncated && !contract.order_independent {
        report.push(Diagnostic::note(
            ANALYSIS,
            contract.name,
            format!(
                "exploration of {} truncated at the {}-configuration budget \
                 (bounded verification: totality checked on the explored prefix)",
                graph.name, contract.config_budget
            ),
        ));
    }
}

impl<P: Protocol> TotalityObserver<P> {
    /// Final verdicts after all instances are explored: query-bound
    /// compliance of the merged recorder, and count-class functionality.
    pub fn finish(
        self,
        contract: &SemanticContract,
        recorder: &QueryRecorder,
        report: &mut Report,
    ) {
        let mut bound_errors = 0usize;
        for q in 0..P::State::COUNT {
            if recorder.thresholds[q] > u64::from(P::MAX_THRESHOLD) {
                bound_errors += 1;
                if bound_errors <= 3 {
                    report.push(Diagnostic::error(
                        ANALYSIS,
                        contract.name,
                        format!(
                            "reachable transition queries state {} with threshold {} > declared \
                             MAX_THRESHOLD {}",
                            state::<P>(q as u32),
                            recorder.thresholds[q],
                            P::MAX_THRESHOLD
                        ),
                    ));
                }
            }
            if u64::from(P::MODULI_LCM.max(1)) % recorder.moduli[q] != 0 {
                bound_errors += 1;
                if bound_errors <= 3 {
                    report.push(Diagnostic::error(
                        ANALYSIS,
                        contract.name,
                        format!(
                            "reachable transition queries state {} with modulus lcm {} not \
                             dividing declared MODULI_LCM {}",
                            state::<P>(q as u32),
                            recorder.moduli[q],
                            P::MODULI_LCM.max(1)
                        ),
                    ));
                }
            }
        }
        if bound_errors > 3 {
            report.push(Diagnostic::note(
                ANALYSIS,
                contract.name,
                format!(
                    "{} further query-bound violations suppressed",
                    bound_errors - 3
                ),
            ));
        }

        for c in &self.conflicts {
            report.push(
                Diagnostic::error(
                    ANALYSIS,
                    contract.name,
                    "transition is not a function of the declared count classes \
                     (not the SM function its bounds claim)",
                )
                .with_witness(format!(
                    "own {}, coin {}: multiset {} maps to {} but multiset {} maps to {} — \
                     both multisets are identical under (min(μ, {}), μ mod {})",
                    state::<P>(c.own),
                    c.coin,
                    multiset::<P>(&c.counts_a),
                    state::<P>(c.next_a),
                    multiset::<P>(&c.counts_b),
                    state::<P>(c.next_b),
                    P::MAX_THRESHOLD,
                    P::MODULI_LCM.max(1),
                )),
            );
        }
        if self.conflict_count > self.conflicts.len() {
            report.push(Diagnostic::note(
                ANALYSIS,
                contract.name,
                format!(
                    "{} further count-class conflicts suppressed",
                    self.conflict_count - self.conflicts.len()
                ),
            ));
        }
        if self.saturated {
            report.push(Diagnostic::warning(
                ANALYSIS,
                contract.name,
                format!(
                    "signature table saturated at {SIG_CAP} entries; count-class \
                     functionality was sampled, not exhaustive"
                ),
            ));
        }
    }
}
