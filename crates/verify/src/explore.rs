//! Bounded exhaustive exploration of a protocol's product state space.
//!
//! A configuration is the vector of per-node state indices on a concrete
//! small graph. The explorer enumerates every configuration reachable
//! from a canonical initial one, under either scheduling model of
//! [`fssga_protocols::contract::Scheduling`]:
//!
//! * **asynchronous** — branch over every `(node, coin)` single
//!   activation, i.e. all interleavings of the paper's adversarial
//!   daemon;
//! * **synchronous** — branch over every per-node coin vector of a full
//!   round (`RANDOMNESS^n` children per configuration; a single
//!   trajectory for deterministic protocols).
//!
//! Exploration is breadth-first with parent pointers, so the schedule
//! reconstructed for any reached configuration is shortest — that is
//! what makes the emitted witnesses minimal. Every transition computed
//! along the way is funnelled through a [`TransitionObserver`] (the
//! semantic-totality pass) and through a shared
//! [`QueryRecorder`], and runs under `catch_unwind` so a panicking
//! protocol becomes a reported violation instead of a crashed lint run.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use fssga_engine::view::QueryRecorder;
use fssga_engine::{NeighborView, Protocol, StateSpace};
use fssga_graph::Graph;

use crate::witness::Step;

/// Everything a transition-level check gets to see about one computed
/// transition: the acting node's state, its coin, the neighbour
/// multiplicity vector (dense `counts` plus the sorted list of `touched`
/// nonzero indices), and the resulting state.
pub struct TransitionCtx<'c> {
    /// The acting node's state index.
    pub own: u32,
    /// The coin drawn.
    pub coin: u32,
    /// The resulting state index.
    pub next: u32,
    /// Dense neighbour multiplicity vector (`S::COUNT` entries).
    pub counts: &'c [u32],
    /// Sorted indices of the nonzero entries of `counts`.
    pub touched: &'c [u32],
}

/// A check that observes every transition the explorer computes.
pub trait TransitionObserver {
    /// Called once per computed transition.
    fn observe(&mut self, ctx: TransitionCtx<'_>);
}

/// The do-nothing observer.
pub struct NoObserver;

impl TransitionObserver for NoObserver {
    fn observe(&mut self, _ctx: TransitionCtx<'_>) {}
}

/// A transition panic, pinned to the configuration and activation that
/// triggered it.
#[derive(Clone, Debug)]
pub struct PanicWitness {
    /// Index of the configuration being expanded.
    pub config: usize,
    /// The activated node.
    pub node: u32,
    /// The coin drawn.
    pub coin: u32,
    /// The panic payload, as text.
    pub message: String,
}

/// The result of exploring one `(graph, init)` instance.
pub struct Exploration {
    /// All discovered configurations; index 0 is the initial one.
    pub configs: Vec<Vec<u32>>,
    /// Parent pointer per configuration: the predecessor index and the
    /// step that produced it (`None` for the initial configuration).
    pub parents: Vec<Option<(usize, Step)>>,
    /// Distinct successor indices per *expanded* configuration (may be
    /// shorter than `configs` when the run was truncated or panicked).
    pub succs: Vec<Vec<usize>>,
    /// Indices of terminal (fixed-point) configurations: no activation
    /// changes any state.
    pub terminals: Vec<usize>,
    /// Whether the budget cut the exploration short.
    pub truncated: bool,
    /// A panic, if one aborted the exploration.
    pub panic: Option<PanicWitness>,
    /// Total transitions computed.
    pub transitions: u64,
}

impl Exploration {
    /// The shortest schedule from the initial configuration to `idx`
    /// within the explored space (by BFS parent pointers).
    pub fn schedule_to(&self, idx: usize) -> Vec<Step> {
        let mut steps = Vec::new();
        let mut cur = idx;
        while let Some((pred, step)) = &self.parents[cur] {
            steps.push(step.clone());
            cur = *pred;
        }
        steps.reverse();
        steps
    }

    /// Searches the expanded transition graph for a directed cycle and
    /// returns its configuration indices if one exists. A cycle among
    /// *changing* transitions is a non-termination witness: the daemon
    /// can schedule the run to loop forever.
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        let m = self.succs.len();
        let mut color = vec![0u8; m]; // 0 white, 1 on stack, 2 done
        for start in 0..m {
            if color[start] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = 1;
            while let Some(top) = stack.last_mut() {
                let (u, ei) = (top.0, top.1);
                if ei < self.succs[u].len() {
                    top.1 += 1;
                    let v = self.succs[u][ei];
                    if v >= m {
                        continue; // unexpanded frontier node: no out-edges known
                    }
                    match color[v] {
                        0 => {
                            color[v] = 1;
                            stack.push((v, 0));
                        }
                        1 => {
                            let pos = stack.iter().position(|&(x, _)| x == v).unwrap();
                            return Some(stack[pos..].iter().map(|&(x, _)| x).collect());
                        }
                        _ => {}
                    }
                } else {
                    color[u] = 2;
                    stack.pop();
                }
            }
        }
        None
    }
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A bounded exhaustive explorer for one protocol on one graph.
pub struct Explorer<'a, P: Protocol> {
    protocol: &'a P,
    graph: &'a Graph,
    budget: usize,
    /// Mod/thresh observations merged across every transition computed by
    /// this explorer (the semantic-totality bounds check reads it).
    pub recorder: RefCell<QueryRecorder>,
}

impl<'a, P: Protocol> Explorer<'a, P> {
    /// A new explorer with a cap on distinct configurations discovered.
    pub fn new(protocol: &'a P, graph: &'a Graph, budget: usize) -> Self {
        Self {
            protocol,
            graph,
            budget,
            recorder: RefCell::new(QueryRecorder::new(P::State::COUNT)),
        }
    }

    /// Computes the transition of node `v` in configuration `cfg` with
    /// `coin`, tallying neighbours into the caller's scratch buffers
    /// (restored to all-zero before returning). `Err` carries a panic
    /// message.
    fn next_state(
        &self,
        cfg: &[u32],
        v: usize,
        coin: u32,
        counts: &mut [u32],
        touched: &mut Vec<u32>,
        obs: &mut impl TransitionObserver,
    ) -> Result<u32, String> {
        touched.clear();
        for &u in self.graph.neighbors(v as u32) {
            let q = cfg[u as usize] as usize;
            if counts[q] == 0 {
                touched.push(q as u32);
            }
            counts[q] += 1;
        }
        touched.sort_unstable();
        let own = P::State::from_index(cfg[v] as usize);
        let result = {
            let view = NeighborView::<P::State>::over_sparse(counts, touched, Some(&self.recorder));
            catch_unwind(AssertUnwindSafe(|| {
                self.protocol.transition(own, &view, coin)
            }))
        };
        let out = match result {
            Ok(s) => {
                let next = s.index() as u32;
                obs.observe(TransitionCtx {
                    own: cfg[v],
                    coin,
                    next,
                    counts,
                    touched,
                });
                Ok(next)
            }
            Err(payload) => Err(panic_message(payload)),
        };
        for &q in touched.iter() {
            counts[q as usize] = 0;
        }
        out
    }

    /// Explores all single-activation interleavings (the asynchronous
    /// daemon): each configuration branches over every `(node, coin)`.
    pub fn explore_async(&self, init: &[u32], obs: &mut impl TransitionObserver) -> Exploration {
        let n = self.graph.n();
        assert_eq!(init.len(), n);
        let r = P::RANDOMNESS.max(1);
        let mut counts = vec![0u32; P::State::COUNT];
        let mut touched: Vec<u32> = Vec::with_capacity(n);

        let mut configs = vec![init.to_vec()];
        let mut index: HashMap<Vec<u32>, usize> = HashMap::new();
        index.insert(init.to_vec(), 0);
        let mut parents: Vec<Option<(usize, Step)>> = vec![None];
        let mut succs: Vec<Vec<usize>> = Vec::new();
        let mut terminals = Vec::new();
        let mut truncated = false;
        let mut panic = None;
        let mut transitions = 0u64;

        let mut i = 0;
        'expand: while i < configs.len() {
            if configs.len() > self.budget {
                truncated = true;
                break;
            }
            let cfg = configs[i].clone();
            let mut out_edges: Vec<usize> = Vec::new();
            let mut changed = false;
            for v in 0..n {
                for coin in 0..r {
                    transitions += 1;
                    match self.next_state(&cfg, v, coin, &mut counts, &mut touched, obs) {
                        Ok(next) if next != cfg[v] => {
                            changed = true;
                            let mut nc = cfg.clone();
                            nc[v] = next;
                            let j = match index.get(&nc) {
                                Some(&j) => j,
                                None => {
                                    let j = configs.len();
                                    index.insert(nc.clone(), j);
                                    configs.push(nc);
                                    parents.push(Some((
                                        i,
                                        Step::Activate {
                                            node: v as u32,
                                            coin,
                                        },
                                    )));
                                    j
                                }
                            };
                            if !out_edges.contains(&j) {
                                out_edges.push(j);
                            }
                        }
                        Ok(_) => {}
                        Err(message) => {
                            panic = Some(PanicWitness {
                                config: i,
                                node: v as u32,
                                coin,
                                message,
                            });
                            succs.push(out_edges);
                            break 'expand;
                        }
                    }
                }
            }
            if !changed {
                terminals.push(i);
            }
            succs.push(out_edges);
            i += 1;
        }

        Exploration {
            configs,
            parents,
            succs,
            terminals,
            truncated,
            panic,
            transitions,
        }
    }

    /// Explores the synchronous round tree: each configuration branches
    /// over all `RANDOMNESS^n` per-node coin vectors, every node firing
    /// simultaneously.
    pub fn explore_sync(&self, init: &[u32], obs: &mut impl TransitionObserver) -> Exploration {
        let n = self.graph.n();
        assert_eq!(init.len(), n);
        let r = u64::from(P::RANDOMNESS.max(1));
        let vectors = r
            .checked_pow(n as u32)
            .filter(|&v| v <= 1 << 16)
            .expect("coin-vector tree too wide; shrink max_nodes or RANDOMNESS");
        let mut counts = vec![0u32; P::State::COUNT];
        let mut touched: Vec<u32> = Vec::with_capacity(n);

        let mut configs = vec![init.to_vec()];
        let mut index: HashMap<Vec<u32>, usize> = HashMap::new();
        index.insert(init.to_vec(), 0);
        let mut parents: Vec<Option<(usize, Step)>> = vec![None];
        let mut succs: Vec<Vec<usize>> = Vec::new();
        let mut terminals = Vec::new();
        let mut truncated = false;
        let mut panic = None;
        let mut transitions = 0u64;

        let mut coins = vec![0u32; n];
        let mut next_cfg = vec![0u32; n];
        let mut i = 0;
        'expand: while i < configs.len() {
            if configs.len() > self.budget {
                truncated = true;
                break;
            }
            let cfg = configs[i].clone();
            let mut out_edges: Vec<usize> = Vec::new();
            let mut changed_any = false;
            for vec_id in 0..vectors {
                let mut x = vec_id;
                for c in coins.iter_mut() {
                    *c = (x % r) as u32;
                    x /= r;
                }
                for v in 0..n {
                    transitions += 1;
                    match self.next_state(&cfg, v, coins[v], &mut counts, &mut touched, obs) {
                        Ok(next) => next_cfg[v] = next,
                        Err(message) => {
                            panic = Some(PanicWitness {
                                config: i,
                                node: v as u32,
                                coin: coins[v],
                                message,
                            });
                            succs.push(out_edges);
                            break 'expand;
                        }
                    }
                }
                if next_cfg != cfg {
                    changed_any = true;
                    let j = match index.get(&next_cfg) {
                        Some(&j) => j,
                        None => {
                            let j = configs.len();
                            index.insert(next_cfg.clone(), j);
                            configs.push(next_cfg.clone());
                            parents.push(Some((
                                i,
                                Step::Round {
                                    coins: coins.clone(),
                                },
                            )));
                            j
                        }
                    };
                    if !out_edges.contains(&j) {
                        out_edges.push(j);
                    }
                }
            }
            if !changed_any {
                terminals.push(i);
            }
            succs.push(out_edges);
            i += 1;
        }

        Exploration {
            configs,
            parents,
            succs,
            terminals,
            truncated,
            panic,
            transitions,
        }
    }

    /// Replays a witness schedule from `init` and returns the final
    /// configuration. `Err` carries a panic message from a transition.
    pub fn replay(&self, init: &[u32], schedule: &[Step]) -> Result<Vec<u32>, String> {
        let mut cfg = init.to_vec();
        let mut counts = vec![0u32; P::State::COUNT];
        let mut touched: Vec<u32> = Vec::new();
        let mut obs = NoObserver;
        for step in schedule {
            match step {
                Step::Activate { node, coin } => {
                    cfg[*node as usize] = self.next_state(
                        &cfg,
                        *node as usize,
                        *coin,
                        &mut counts,
                        &mut touched,
                        &mut obs,
                    )?;
                }
                Step::Round { coins } => {
                    assert_eq!(coins.len(), cfg.len());
                    let mut next = vec![0u32; cfg.len()];
                    for v in 0..cfg.len() {
                        next[v] = self.next_state(
                            &cfg,
                            v,
                            coins[v],
                            &mut counts,
                            &mut touched,
                            &mut obs,
                        )?;
                    }
                    cfg = next;
                }
            }
        }
        Ok(cfg)
    }
}

/// Formats a configuration as debug-printed states, e.g. `[A, Blank, B]`.
pub fn format_config<P: Protocol>(cfg: &[u32]) -> String {
    let states: Vec<String> = cfg
        .iter()
        .map(|&q| format!("{:?}", P::State::from_index(q as usize)))
        .collect();
    format!("[{}]", states.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssga_engine::impl_state_space;
    use fssga_graph::generators;

    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    enum OrState {
        Zero,
        One,
    }
    impl_state_space!(OrState { Zero, One });

    /// One-bit OR diffusion: confluent, terminating.
    struct OrDiffusion;
    impl Protocol for OrDiffusion {
        type State = OrState;
        fn transition(
            &self,
            own: OrState,
            nbrs: &NeighborView<'_, OrState>,
            _coin: u32,
        ) -> OrState {
            if own == OrState::One || nbrs.some(OrState::One) {
                OrState::One
            } else {
                OrState::Zero
            }
        }
    }

    /// A blinker: flips its own state every activation. Never terminates.
    struct Blinker;
    impl Protocol for Blinker {
        type State = OrState;
        fn transition(
            &self,
            own: OrState,
            _nbrs: &NeighborView<'_, OrState>,
            _coin: u32,
        ) -> OrState {
            match own {
                OrState::Zero => OrState::One,
                OrState::One => OrState::Zero,
            }
        }
    }

    #[test]
    fn or_diffusion_async_has_unique_fixpoint() {
        let g = generators::path(4);
        let explorer = Explorer::new(&OrDiffusion, &g, 10_000);
        let init = [1u32, 0, 0, 0];
        let ex = explorer.explore_async(&init, &mut NoObserver);
        assert!(!ex.truncated);
        assert!(ex.panic.is_none());
        assert_eq!(ex.terminals.len(), 1, "OR diffusion is confluent");
        assert_eq!(ex.configs[ex.terminals[0]], vec![1, 1, 1, 1]);
        assert!(ex.find_cycle().is_none());
        // The shortest schedule to the fixpoint floods left to right.
        let sched = ex.schedule_to(ex.terminals[0]);
        assert_eq!(sched.len(), 3);
        let replayed = explorer.replay(&init, &sched).unwrap();
        assert_eq!(replayed, ex.configs[ex.terminals[0]]);
    }

    #[test]
    fn blinker_has_a_cycle_and_no_terminal() {
        let g = generators::path(2);
        let explorer = Explorer::new(&Blinker, &g, 10_000);
        let ex = explorer.explore_async(&[0, 0], &mut NoObserver);
        assert!(ex.terminals.is_empty());
        assert!(ex.find_cycle().is_some());
    }

    #[test]
    fn sync_exploration_of_deterministic_protocol_is_a_trajectory() {
        let g = generators::path(5);
        let explorer = Explorer::new(&OrDiffusion, &g, 10_000);
        let ex = explorer.explore_sync(&[1, 0, 0, 0, 0], &mut NoObserver);
        // One new configuration per round until the flood completes.
        assert_eq!(ex.terminals.len(), 1);
        assert_eq!(ex.configs.len(), 5, "rounds 0..4 each add one config");
        assert!(
            ex.succs.iter().all(|s| s.len() <= 1),
            "deterministic rounds branch nowhere"
        );
        let sched = ex.schedule_to(ex.terminals[0]);
        let replayed = explorer.replay(&[1, 0, 0, 0, 0], &sched).unwrap();
        assert_eq!(replayed, vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn budget_truncates() {
        let g = generators::path(4);
        let explorer = Explorer::new(&OrDiffusion, &g, 2);
        let ex = explorer.explore_async(&[1, 0, 0, 0], &mut NoObserver);
        assert!(ex.truncated);
    }
}
