//! The checker's instance families.
//!
//! Bounded model checking is only as strong as the instances it covers,
//! so the family is exhaustive where that is affordable: *every*
//! connected graph on up to four nodes (via
//! [`fssga_graph::generators::all_connected_graphs`]), topped up with the
//! named shapes the paper's arguments single out (paths, cycles, stars,
//! cliques) at the sizes where exhaustive enumeration stops paying.

use fssga_graph::{generators, Graph};

/// A graph with a stable human-readable name, used in diagnostics and
/// witnesses.
pub struct NamedGraph {
    /// Stable name, e.g. `"all-n3-#2"` or `"cycle-5"`.
    pub name: String,
    /// The instance itself.
    pub graph: Graph,
}

impl NamedGraph {
    fn new(name: impl Into<String>, graph: Graph) -> Self {
        Self {
            name: name.into(),
            graph,
        }
    }
}

/// The standard family for a protocol capped at `max_nodes`: every
/// connected graph on `2..=min(max_nodes, 4)` nodes, then named paths,
/// cycles, stars and cliques for each larger size up to `max_nodes`.
/// Ordered by node count so that the first violating instance a check
/// reports is minimal within the family.
pub fn family(max_nodes: usize) -> Vec<NamedGraph> {
    assert!(max_nodes >= 2, "instance family needs max_nodes >= 2");
    let mut out = Vec::new();
    for n in 2..=max_nodes.min(4) {
        for (i, g) in generators::all_connected_graphs(n).into_iter().enumerate() {
            out.push(NamedGraph::new(format!("all-n{n}-#{i}"), g));
        }
    }
    for n in 5..=max_nodes {
        out.push(NamedGraph::new(format!("path-{n}"), generators::path(n)));
        out.push(NamedGraph::new(format!("cycle-{n}"), generators::cycle(n)));
        out.push(NamedGraph::new(format!("star-{n}"), generators::star(n)));
        out.push(NamedGraph::new(
            format!("clique-{n}"),
            generators::complete(n),
        ));
    }
    out
}

/// Paths only — the firing-squad protocol is specified for path graphs
/// and is not meaningful elsewhere.
pub fn paths(max_nodes: usize) -> Vec<NamedGraph> {
    assert!(max_nodes >= 2, "instance family needs max_nodes >= 2");
    (2..=max_nodes)
        .map(|n| NamedGraph::new(format!("path-{n}"), generators::path(n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssga_graph::exact;

    #[test]
    fn family_is_connected_and_size_ordered() {
        let fam = family(6);
        assert!(fam.iter().all(|g| exact::is_connected(&g.graph)));
        let sizes: Vec<usize> = fam.iter().map(|g| g.graph.n()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted, "family must be ordered by node count");
        // 1 + 4 + 38 exhaustive graphs, plus 4 named shapes at n = 5, 6.
        assert_eq!(fam.len(), 1 + 4 + 38 + 4 + 4);
    }

    #[test]
    fn family_names_are_unique() {
        let fam = family(6);
        let mut names: Vec<&str> = fam.iter().map(|g| g.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), fam.len());
    }

    #[test]
    fn paths_family_is_paths() {
        let fam = paths(5);
        assert_eq!(fam.len(), 4);
        for g in &fam {
            assert_eq!(g.graph.m(), g.graph.n() - 1);
            assert!(g.name.starts_with("path-"));
        }
    }
}
