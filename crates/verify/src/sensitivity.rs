//! Sensitivity certification against the declared Section 2 class.
//!
//! The engine's [`fssga_engine::sensitivity::sweep_single_faults`]
//! estimator replays a deterministic campaign once per `(time, fault)`
//! pair; here the sweep is *exhaustive* over an instance — every node
//! kill, every edge cut, every instant up to the horizon — and the
//! verdict pattern is certified against the contract:
//!
//! * `Zero` — no probe may be harmful at all;
//! * `Constant(k)` — at most `k` distinct harmful node kills at any one
//!   instant, and every harmful kill must name a node of the declared
//!   critical set at that instant;
//! * `Linear` — any pattern satisfies `|χ| ≤ n`, so exhaustive replay
//!   cannot refute the declaration; the checker records that the claim
//!   is certified as an upper bound only (the Θ(n) *lower*-bound
//!   evidence lives in the experiments, not the verifier).

use fssga_core::diag::{Diagnostic, Report};
use fssga_engine::sensitivity::SensitivityReport;
use fssga_engine::{FaultKind, SensitivityClass};
use fssga_graph::{Graph, NodeId};
use fssga_protocols::contract::SemanticContract;

const ANALYSIS: &str = "verify-sensitivity";

/// Every single benign fault an instance admits: all node kills plus all
/// edge cuts.
pub fn exhaustive_kinds(g: &Graph) -> Vec<FaultKind> {
    let mut kinds: Vec<FaultKind> = (0..g.n() as NodeId).map(FaultKind::Node).collect();
    kinds.extend(g.edges().map(|(u, v)| FaultKind::Edge(u, v)));
    kinds
}

fn describe(kind: FaultKind) -> String {
    match kind {
        FaultKind::Node(v) => format!("kill node {v}"),
        FaultKind::Edge(u, v) => format!("cut edge {u}-{v}"),
        FaultKind::AddNode(v) => format!("add node {v}"),
        FaultKind::AddEdge(u, v) => format!("add edge {u}-{v}"),
    }
}

/// Certifies an exhaustive sweep against the declared class.
pub fn certify(
    contract: &SemanticContract,
    instance: &str,
    n: usize,
    sweep: &SensitivityReport,
    critical_at: impl FnMut(u64) -> Vec<NodeId>,
    report: &mut Report,
) {
    let probes = sweep.probes.len();
    match contract.sensitivity {
        SensitivityClass::Zero => {
            let harmful: Vec<String> = sweep
                .harmful()
                .map(|p| format!("{} at t={}", describe(p.kind), p.time))
                .collect();
            if harmful.is_empty() {
                report.push(Diagnostic::note(
                    ANALYSIS,
                    contract.name,
                    format!(
                        "0-sensitivity certified on {instance}: {probes} exhaustive \
                         single-fault probes, none harmful"
                    ),
                ));
            } else {
                report.push(
                    Diagnostic::error(
                        ANALYSIS,
                        contract.name,
                        format!(
                            "declared 0-sensitive but {} of {probes} single-fault probes \
                             on {instance} broke the run",
                            harmful.len()
                        ),
                    )
                    .with_witness(harmful[..harmful.len().min(5)].join("; ")),
                );
            }
        }
        SensitivityClass::Constant(k) => {
            let empirical = sweep.empirical_sensitivity();
            if empirical > k {
                let mut worst: Vec<(u64, Vec<NodeId>)> = Vec::new();
                let mut times: Vec<u64> = sweep.probes.iter().map(|p| p.time).collect();
                times.sort_unstable();
                times.dedup();
                for t in times {
                    let nodes = sweep.harmful_nodes_at(t);
                    if nodes.len() == empirical {
                        worst.push((t, nodes));
                    }
                }
                report.push(
                    Diagnostic::error(
                        ANALYSIS,
                        contract.name,
                        format!(
                            "declared {k}-sensitive but {empirical} distinct node kills are \
                             simultaneously harmful on {instance}"
                        ),
                    )
                    .with_witness(format!("worst instants: {worst:?}")),
                );
            }
            let uncovered = sweep.uncovered_by(critical_at);
            if !uncovered.is_empty() {
                report.push(
                    Diagnostic::error(
                        ANALYSIS,
                        contract.name,
                        format!(
                            "declared critical set does not cover every harmful kill on \
                             {instance}"
                        ),
                    )
                    .with_witness(format!(
                        "(time, node) pairs outside the declared χ: {:?}",
                        &uncovered[..uncovered.len().min(5)]
                    )),
                );
            }
            if empirical <= k && uncovered.is_empty() {
                report.push(Diagnostic::note(
                    ANALYSIS,
                    contract.name,
                    format!(
                        "{k}-sensitivity certified on {instance}: {probes} exhaustive probes, \
                         empirical max {empirical} harmful kill(s) per instant, all covered \
                         by the declared critical set"
                    ),
                ));
            }
        }
        SensitivityClass::Linear => {
            let _ = n;
            report.push(Diagnostic::note(
                ANALYSIS,
                contract.name,
                format!(
                    "Θ(n) declared: |χ| ≤ n holds vacuously, so {probes} probes on \
                     {instance} certify an upper bound only"
                ),
            ));
        }
    }
}

/// Records that a Θ(n) declaration is certified as an upper bound only,
/// without running a sweep (no single-fault pattern can refute it).
pub fn note_linear(contract: &SemanticContract, report: &mut Report) {
    report.push(Diagnostic::note(
        ANALYSIS,
        contract.name,
        "Θ(n) declared: every single-fault pattern satisfies |χ| ≤ n, so exhaustive \
         replay certifies the upper bound only; see EXPERIMENTS.md for the empirical \
         Θ(n) lower-bound evidence",
    ));
}
