//! Finite-state realisability (compliance) audit for protocols.
//!
//! A `Protocol` is an SM function of its neighbour multiset by
//! construction — the `NeighborView` only answers mod/thresh queries — but
//! finite-state *realisability* additionally needs the set of queries to
//! be bounded: a protocol whose thresholds keep growing round over round
//! (e.g. one that counts neighbours with an unbounded cap) has no
//! mod-thresh compilation and no finite automaton.
//!
//! This module abstract-interprets protocols in the query-signature
//! domain: the abstract state is a [`QueryRecorder`] (per input state, the
//! max threshold and the lcm of moduli queried so far), ordered by
//! [`QueryRecorder::subsumed_by`]. Driving the protocol over a family of
//! probe graphs and merging per-round signatures yields an ascending
//! chain. Convergence is judged on the *aggregate* magnitudes — the
//! global max threshold and global moduli lcm — because the set of
//! queried states is trivially bounded by the finite state space (a huge
//! automaton such as the election protocol legitimately queries fresh
//! states for many rounds), while unbounded growth in the magnitudes is
//! exactly what breaks mod-thresh compilability. The audit demands the
//! aggregate chain reach a fixed point before the stability tail, then
//! checks the full per-state fixed point against the protocol's declared
//! `MAX_THRESHOLD` / `MODULI_LCM` bounds. States that push the aggregate
//! upward during the tail are flagged as divergence suspects.

use fssga_engine::view::QueryRecorder;
use fssga_engine::{Network, Protocol};
use fssga_graph::rng::Xoshiro256;
use fssga_graph::{generators, Graph, NodeId};

use crate::diag::{Diagnostic, Report};

/// Knobs for the compliance probe.
#[derive(Clone, Debug)]
pub struct ProbeConfig {
    /// Rounds to run on each probe graph.
    pub rounds: usize,
    /// How many trailing rounds the merged signature must be stable for to
    /// count as converged.
    pub stable_tail: usize,
    /// Seed for the probe-graph family and the protocol coins.
    pub seed: u64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        Self {
            rounds: 60,
            stable_tail: 10,
            seed: 0xF55A,
        }
    }
}

/// Outcome of probing one protocol.
#[derive(Clone, Debug)]
pub struct ComplianceOutcome {
    /// The merged query signature at the end of all probes.
    pub signature: QueryRecorder,
    /// Earliest round index after which the aggregate signature (global
    /// max threshold, global moduli lcm) never grew again, or `None` if it
    /// was still growing in the stability tail.
    pub converged_at: Option<usize>,
    /// States (dense indices) that pushed the aggregate signature upward
    /// during the stability tail — the divergence suspects.
    pub divergent_states: Vec<usize>,
}

/// The probe-graph family: small, structurally diverse, deterministic.
/// Cycles exercise degree-2 symmetry, the star exercises a high-degree
/// hub, the complete graph maximises multiplicities, the grid gives
/// mixed degrees, and the random graphs cover the rest.
fn probe_graphs(seed: u64) -> Vec<Graph> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    vec![
        generators::cycle(8),
        generators::path(9),
        generators::star(7),
        generators::complete(6),
        generators::grid(3, 4),
        generators::connected_gnp(16, 0.25, &mut rng),
        generators::connected_gnp(24, 0.15, &mut rng),
    ]
}

/// Probes a protocol over the graph family, tracking the per-round merged
/// query signature and its convergence.
pub fn probe_protocol<P: Protocol>(
    protocol: P,
    init: impl Fn(NodeId) -> P::State,
    cfg: &ProbeConfig,
) -> ComplianceOutcome {
    let num_states = <P::State as fssga_engine::StateSpace>::COUNT;
    let mut merged = QueryRecorder::new(num_states);
    // The convergence chain lives in the small aggregate lattice:
    // (global max threshold, global moduli lcm) under (max, lcm).
    let mut agg_t = 1u64;
    let mut agg_m = 1u64;
    let mut converged_at = Some(0);
    let mut grew_in_tail = vec![false; num_states];
    for (gi, g) in probe_graphs(cfg.seed).iter().enumerate() {
        let mut net = Network::new(g, &protocol, &init);
        net.enable_recording();
        for round in 0..cfg.rounds {
            net.sync_step_seeded(cfg.seed ^ ((gi as u64) << 32) ^ round as u64);
            let rec = net.recorded_queries().expect("recording enabled");
            let round_t = rec.thresholds.iter().copied().max().unwrap_or(1);
            let round_m = rec
                .moduli
                .iter()
                .copied()
                .fold(1, fssga_core::modthresh::lcm);
            if round_t > agg_t || !agg_m.is_multiple_of(round_m) {
                // The aggregate signature grew this round.
                let in_tail = round + cfg.stable_tail >= cfg.rounds;
                if in_tail {
                    for (q, grew) in grew_in_tail.iter_mut().enumerate() {
                        if rec.thresholds[q] > agg_t || !agg_m.is_multiple_of(rec.moduli[q]) {
                            *grew = true;
                        }
                    }
                    converged_at = None;
                } else if converged_at.is_some() {
                    converged_at = Some(round + 1);
                }
                agg_t = agg_t.max(round_t);
                agg_m = fssga_core::modthresh::lcm(agg_m, round_m);
            }
            merged.merge(&rec);
        }
    }
    ComplianceOutcome {
        signature: merged,
        converged_at,
        divergent_states: grew_in_tail
            .iter()
            .enumerate()
            .filter(|&(_, &g)| g)
            .map(|(q, _)| q)
            .collect(),
    }
}

/// Lint entry point: probes the protocol, then checks (1) signature
/// convergence and (2) that the fixed point is within the declared
/// `MAX_THRESHOLD` / `MODULI_LCM` bounds.
pub fn audit_protocol<P: Protocol>(
    subject: &str,
    protocol: P,
    init: impl Fn(NodeId) -> P::State,
    cfg: &ProbeConfig,
) -> Report {
    let mut report = Report::new();
    let outcome = probe_protocol(protocol, init, cfg);
    if outcome.converged_at.is_none() {
        report.push(
            Diagnostic::error(
                "compliance",
                subject,
                format!(
                    "query signature never converged within {} rounds: protocol may not be \
                     finite-state realisable",
                    cfg.rounds
                ),
            )
            .with_witness(format!(
                "states with still-growing signatures: {:?}",
                outcome.divergent_states
            )),
        );
    }
    for (q, &t) in outcome.signature.thresholds.iter().enumerate() {
        if t > u64::from(P::MAX_THRESHOLD) {
            report.push(Diagnostic::error(
                "compliance",
                subject,
                format!(
                    "state {q}: observed threshold {t} exceeds declared MAX_THRESHOLD {}",
                    P::MAX_THRESHOLD
                ),
            ));
        }
    }
    for (q, &m) in outcome.signature.moduli.iter().enumerate() {
        if u64::from(P::MODULI_LCM) % m != 0 {
            report.push(Diagnostic::error(
                "compliance",
                subject,
                format!(
                    "state {q}: observed modulus {m} does not divide declared MODULI_LCM {}",
                    P::MODULI_LCM
                ),
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssga_engine::{impl_state_space, NeighborView};
    use fssga_protocols::two_coloring::TwoColoring;

    #[test]
    fn two_coloring_is_compliant() {
        let report = audit_protocol(
            "two_coloring",
            TwoColoring,
            |v| TwoColoring::init(v == 0),
            &ProbeConfig::default(),
        );
        assert!(report.is_clean(), "{report}");
    }

    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    enum Greedy {
        A,
        B,
    }
    impl_state_space!(Greedy { A, B });

    /// Declares MAX_THRESHOLD = 2 but queries threshold 5: dishonest.
    struct OverThreshold;
    impl Protocol for OverThreshold {
        type State = Greedy;
        fn transition(&self, own: Greedy, n: &NeighborView<'_, Greedy>, _c: u32) -> Greedy {
            if n.at_least(Greedy::B, 5) {
                Greedy::B
            } else {
                own
            }
        }
    }

    #[test]
    fn dishonest_declaration_flagged() {
        let report = audit_protocol(
            "over_threshold",
            OverThreshold,
            |v| if v == 0 { Greedy::B } else { Greedy::A },
            &ProbeConfig::default(),
        );
        assert!(!report.is_clean());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.message.contains("exceeds declared MAX_THRESHOLD")));
    }

    /// Queries an ever-larger threshold on each activation (interior
    /// mutability models a protocol whose queries depend on unbounded
    /// history): the query signature never settles, so the protocol is
    /// not finite-state realisable.
    struct RaisingThreshold(std::cell::Cell<u32>);
    impl Protocol for RaisingThreshold {
        type State = Greedy;
        // Deliberately generous declaration: divergence must still be
        // caught by the convergence check, not the bounds check.
        const MAX_THRESHOLD: u32 = u32::MAX;
        fn transition(&self, own: Greedy, n: &NeighborView<'_, Greedy>, _c: u32) -> Greedy {
            let t = self.0.get();
            self.0.set(t + 1);
            let _ = n.at_least(Greedy::A, t.max(1));
            own
        }
    }

    #[test]
    fn divergent_signature_flagged() {
        let report = audit_protocol(
            "raising_threshold",
            RaisingThreshold(std::cell::Cell::new(1)),
            |_| Greedy::A,
            &ProbeConfig::default(),
        );
        assert!(!report.is_clean());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.message.contains("never converged")));
    }
}
