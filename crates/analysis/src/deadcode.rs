//! Dead-code analysis: unreachable working states and dead decision-list
//! clauses.
//!
//! For sequential programs "dead" means a working state no input sequence
//! reaches from `w0`; for parallel programs, a working value not obtainable
//! as any tree combination of lifted inputs. For mod-thresh decision lists
//! the analysis is semantic and *exact*: a clause is live iff it fires
//! first on some input, and since each `μ_j` matters only through
//! `(min(μ_j, T_j), μ_j mod M_j)` (the Lemma 3.8/3.9 count classes), it
//! suffices to test one representative per class combination. Every
//! verdict about a dead clause comes with either a shadowing proof (a
//! witness multiset the guard accepts but an earlier clause captures) or
//! an unsatisfiability verdict (no input satisfies the guard at all).

use fssga_core::{Id, ModThreshProgram, ParProgram, SeqProgram, SmError};

use crate::diag::{Diagnostic, Report};

/// Verdict on one guarded clause of a decision list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClauseVerdict {
    /// The clause fires first on the witness multiplicity vector.
    Live {
        /// A multiplicity vector on which this clause is the first to fire.
        witness: Vec<u64>,
    },
    /// The guard is satisfiable, but every satisfying input is captured by
    /// an earlier clause — the shadowing proof names the earliest one.
    Shadowed {
        /// Index of the earliest clause that fires on the witness.
        by: usize,
        /// A multiplicity vector satisfying this guard on which clause
        /// `by` fires instead.
        witness: Vec<u64>,
    },
    /// No nonempty input satisfies the guard at all.
    Unsatisfiable,
}

/// Classifies every guarded clause of a mod-thresh program as live,
/// shadowed, or unsatisfiable. Exact over the complete count-class space;
/// errors with [`SmError::TooLarge`] if that space exceeds `limit`.
pub fn clause_verdicts(mt: &ModThreshProgram, limit: u128) -> Result<Vec<ClauseVerdict>, SmError> {
    let reps = mt.class_representatives(limit)?;
    let clauses: Vec<_> = mt.clauses().collect();
    // A clause may look shadowed on one representative yet fire first on
    // another; liveness always wins, so collect both kinds of evidence and
    // resolve at the end.
    let mut live: Vec<Option<Vec<u64>>> = vec![None; clauses.len()];
    let mut shadowed: Vec<Option<(usize, Vec<u64>)>> = vec![None; clauses.len()];
    for counts in &reps {
        let first = clauses.iter().position(|(p, _)| p.eval(counts));
        let Some(j) = first else { continue };
        if live[j].is_none() {
            live[j] = Some(counts.clone());
        }
        for (i, (prop, _)) in clauses.iter().enumerate().skip(j + 1) {
            if live[i].is_none() && shadowed[i].is_none() && prop.eval(counts) {
                shadowed[i] = Some((j, counts.clone()));
            }
        }
    }
    Ok(live
        .into_iter()
        .zip(shadowed)
        .map(|(l, s)| match (l, s) {
            (Some(witness), _) => ClauseVerdict::Live { witness },
            (None, Some((by, witness))) => ClauseVerdict::Shadowed { by, witness },
            (None, None) => ClauseVerdict::Unsatisfiable,
        })
        .collect())
}

/// Indices of working states a sequential program can never enter.
pub fn unreachable_states_seq(p: &SeqProgram) -> Vec<Id> {
    p.reachable_states()
        .iter()
        .enumerate()
        .filter(|&(_, &r)| !r)
        .map(|(w, _)| w)
        .collect()
}

/// Indices of working values a parallel program can never obtain (not in
/// the closure of `α(Q)` under the combine).
pub fn unreachable_values_par(p: &ParProgram) -> Vec<Id> {
    let obtainable = p.obtainable_values();
    let mut mask = vec![false; p.num_working()];
    for v in obtainable {
        mask[v] = true;
    }
    mask.iter()
        .enumerate()
        .filter(|&(_, &m)| !m)
        .map(|(w, _)| w)
        .collect()
}

/// Dead-code report for a sequential program: unreachable working states
/// are warnings (wasted table rows, and `check_sm` rightly ignores them).
pub fn audit_seq(subject: &str, p: &SeqProgram) -> Report {
    let mut report = Report::new();
    let dead = unreachable_states_seq(p);
    if !dead.is_empty() {
        report.push(Diagnostic::warning(
            "dead-code",
            subject,
            format!(
                "{} of {} working states are unreachable from w0 = {}: {:?}",
                dead.len(),
                p.num_working(),
                p.w0(),
                dead
            ),
        ));
    }
    report
}

/// Dead-code report for a parallel program: unobtainable working values.
pub fn audit_par(subject: &str, p: &ParProgram) -> Report {
    let mut report = Report::new();
    let dead = unreachable_values_par(p);
    if !dead.is_empty() {
        report.push(Diagnostic::warning(
            "dead-code",
            subject,
            format!(
                "{} of {} working values are not obtainable from any input combination: {:?}",
                dead.len(),
                p.num_working(),
                dead
            ),
        ));
    }
    report
}

/// Dead-code report for a mod-thresh decision list. Dead clauses are
/// errors: a clause that cannot fire is either a typo or a stale edit, and
/// the paper's decision-list semantics makes its presence pure noise.
pub fn audit_mt(subject: &str, mt: &ModThreshProgram, limit: u128) -> Report {
    let mut report = Report::new();
    match clause_verdicts(mt, limit) {
        Ok(verdicts) => {
            for (i, v) in verdicts.iter().enumerate() {
                match v {
                    ClauseVerdict::Live { .. } => {}
                    ClauseVerdict::Shadowed { by, witness } => {
                        report.push(
                            Diagnostic::error(
                                "dead-code",
                                subject,
                                format!("clause {i} is dead: every input it accepts is captured by clause {by}"),
                            )
                            .with_witness(format!(
                                "counts {witness:?} satisfy clause {i}'s guard but clause {by} fires first"
                            )),
                        );
                    }
                    ClauseVerdict::Unsatisfiable => {
                        report.push(Diagnostic::error(
                            "dead-code",
                            subject,
                            format!("clause {i} is dead: its guard is unsatisfiable"),
                        ));
                    }
                }
            }
        }
        Err(e) => {
            report.push(Diagnostic::warning(
                "dead-code",
                subject,
                format!("clause liveness not decided: {e}"),
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssga_core::{library, Prop};

    #[test]
    fn paper_two_coloring_has_no_dead_clauses() {
        let mt = library::two_coloring_blank_mt();
        let verdicts = clause_verdicts(&mt, 1 << 16).unwrap();
        for (i, v) in verdicts.iter().enumerate() {
            assert!(matches!(v, ClauseVerdict::Live { .. }), "clause {i}: {v:?}");
        }
        assert!(audit_mt("two_coloring", &mt, 1 << 16).is_clean());
    }

    #[test]
    fn live_witnesses_actually_fire_first() {
        let mt = library::two_coloring_blank_mt();
        for (i, v) in clause_verdicts(&mt, 1 << 16).unwrap().iter().enumerate() {
            let ClauseVerdict::Live { witness } = v else {
                panic!("clause {i} not live")
            };
            let clauses: Vec<_> = mt.clauses().collect();
            let first = clauses.iter().position(|(p, _)| p.eval(witness));
            assert_eq!(first, Some(i));
        }
    }

    #[test]
    fn shadowed_clause_detected_with_proof() {
        // Clause 1 repeats clause 0's guard: fully shadowed.
        let mt =
            ModThreshProgram::new(2, 3, vec![(Prop::some(0), 1), (Prop::some(0), 2)], 0).unwrap();
        let verdicts = clause_verdicts(&mt, 1 << 16).unwrap();
        assert!(matches!(verdicts[0], ClauseVerdict::Live { .. }));
        match &verdicts[1] {
            ClauseVerdict::Shadowed { by, witness } => {
                assert_eq!(*by, 0);
                assert!(
                    witness[0] >= 1,
                    "witness must satisfy the guard: {witness:?}"
                );
            }
            other => panic!("expected shadowed, got {other:?}"),
        }
        assert!(!audit_mt("shadowed", &mt, 1 << 16).is_clean());
    }

    #[test]
    fn unsatisfiable_clause_detected() {
        // μ_0 < 1 AND μ_0 >= 2 is a contradiction.
        let mt = ModThreshProgram::new(2, 2, vec![(Prop::none(0).and(Prop::at_least(0, 2)), 1)], 0)
            .unwrap();
        let verdicts = clause_verdicts(&mt, 1 << 16).unwrap();
        assert_eq!(verdicts, vec![ClauseVerdict::Unsatisfiable]);
    }

    #[test]
    fn partial_shadowing_is_still_live() {
        // Clause 1 overlaps clause 0 on μ_0 >= 1 ∧ μ_1 >= 1 but also fires
        // alone on μ_1-only inputs: live.
        let mt =
            ModThreshProgram::new(2, 3, vec![(Prop::some(0), 1), (Prop::some(1), 2)], 0).unwrap();
        let verdicts = clause_verdicts(&mt, 1 << 16).unwrap();
        assert!(matches!(verdicts[0], ClauseVerdict::Live { .. }));
        assert!(matches!(verdicts[1], ClauseVerdict::Live { .. }));
    }

    #[test]
    fn unreachable_seq_states_found() {
        // OR with three junk states.
        let p = SeqProgram::from_fn(
            2,
            5,
            2,
            0,
            |w, q| if w < 2 { w | q } else { 4 },
            |w| usize::from(w == 1),
        )
        .unwrap();
        assert_eq!(unreachable_states_seq(&p), vec![2, 3, 4]);
        let report = audit_seq("junky_or", &p);
        assert!(report.is_clean(), "unreachable states warn, not error");
        assert_eq!(report.warning_count(), 1);
    }

    #[test]
    fn fully_reachable_seq_is_silent() {
        let p = library::parity_seq();
        assert!(unreachable_states_seq(&p).is_empty());
        assert!(audit_seq("parity", &p).diagnostics.is_empty());
    }

    #[test]
    fn unobtainable_par_values_found() {
        // Combine never leaves {0,1}; value 2 is junk.
        let p = ParProgram::from_fn(2, 3, 2, |q| q, |a, b| (a | b) & 1, |w| w & 1).unwrap();
        assert_eq!(unreachable_values_par(&p), vec![2]);
        assert_eq!(audit_par("padded_or", &p).warning_count(), 1);
    }

    #[test]
    fn class_space_budget_respected() {
        let mt = library::parity_mt(8, 0);
        assert!(matches!(
            clause_verdicts(&mt, 1),
            Err(SmError::TooLarge { .. })
        ));
    }
}
