//! Blow-up accounting for the Theorem 3.7 conversions.
//!
//! The paper notes the conversions between sequential, parallel and
//! mod-thresh programs "can entail an exponential increase in program
//! complexity". This module makes that cost concrete per library program:
//! it drives each one around the conversion cycle
//! seq → mt (Lemma 3.9) → par (Lemma 3.8) → seq (Lemma 3.5) and records
//! every size along the way, plus the Moore-minimal size as the floor the
//! blow-up should be judged against. The output doubles as a regression
//! surface: the table is machine-readable (TSV and JSON) so the bench
//! harness can diff it across commits.

use fssga_core::convert::{mt_to_par, mt_to_par_cost, par_to_seq, seq_to_mt, seq_to_mt_cost};
use fssga_core::{library, SeqProgram};

/// One program's trip around the conversion cycle.
#[derive(Clone, Debug)]
pub struct BlowupRow {
    /// Library name of the program.
    pub name: String,
    /// `|W|` of the original sequential program.
    pub seq_states: usize,
    /// `|W|` of the Moore-minimal equivalent (the floor).
    pub min_states: usize,
    /// Predicted Lemma 3.9 cost (count-class combinations).
    pub seq_to_mt_cost: u128,
    /// Clauses of the converted mod-thresh program (counting the default),
    /// or `None` if the conversion exceeded the budget.
    pub mt_clauses: Option<usize>,
    /// Total atoms across the converted program's guards.
    pub mt_atoms: Option<usize>,
    /// Predicted Lemma 3.8 cost for the converted program.
    pub mt_to_par_cost: Option<u128>,
    /// `|W|` of the parallel program from Lemma 3.8.
    pub par_states: Option<usize>,
    /// `|W|` after closing the cycle with Lemma 3.5.
    pub roundtrip_seq_states: Option<usize>,
}

/// Drives one sequential program around the conversion cycle under the
/// given table budget.
pub fn account(name: &str, seq: &SeqProgram, limit: u128) -> BlowupRow {
    let mut row = BlowupRow {
        name: name.to_string(),
        seq_states: seq.num_working(),
        min_states: seq.minimized().num_working(),
        seq_to_mt_cost: seq_to_mt_cost(seq),
        mt_clauses: None,
        mt_atoms: None,
        mt_to_par_cost: None,
        par_states: None,
        roundtrip_seq_states: None,
    };
    let Ok(mt) = seq_to_mt(seq, limit) else {
        return row;
    };
    row.mt_clauses = Some(mt.num_clauses());
    row.mt_atoms = Some(mt.atom_count());
    row.mt_to_par_cost = Some(mt_to_par_cost(&mt));
    let Ok(par) = mt_to_par(&mt, limit) else {
        return row;
    };
    row.par_states = Some(par.num_working());
    row.roundtrip_seq_states = Some(par_to_seq(&par).num_working());
    row
}

/// The library programs tracked by the accounting table.
pub fn library_blowup(limit: u128) -> Vec<BlowupRow> {
    vec![
        account("or_seq", &library::or_seq(), limit),
        account("and_seq", &library::and_seq(), limit),
        account("parity_seq", &library::parity_seq(), limit),
        account(
            "count_ones_mod_seq(3)",
            &library::count_ones_mod_seq(3),
            limit,
        ),
        account(
            "count_ones_mod_seq(5)",
            &library::count_ones_mod_seq(5),
            limit,
        ),
        account("max_state_seq(3)", &library::max_state_seq(3), limit),
        account("max_state_seq(4)", &library::max_state_seq(4), limit),
        account("min_state_seq(3)", &library::min_state_seq(3), limit),
        account(
            "count_at_least_seq(2,1,3)",
            &library::count_at_least_seq(2, 1, 3),
            limit,
        ),
        account("all_equal_seq(3)", &library::all_equal_seq(3), limit),
    ]
}

fn opt<T: std::fmt::Display>(v: &Option<T>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "-".to_string(),
    }
}

/// Renders rows as a tab-separated table with a header line.
pub fn to_tsv(rows: &[BlowupRow]) -> String {
    let mut out = String::from(
        "name\tseq_states\tmin_states\tseq_to_mt_cost\tmt_clauses\tmt_atoms\t\
         mt_to_par_cost\tpar_states\troundtrip_seq_states\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            r.name,
            r.seq_states,
            r.min_states,
            r.seq_to_mt_cost,
            opt(&r.mt_clauses),
            opt(&r.mt_atoms),
            opt(&r.mt_to_par_cost),
            opt(&r.par_states),
            opt(&r.roundtrip_seq_states),
        ));
    }
    out
}

fn json_opt<T: std::fmt::Display>(v: &Option<T>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "null".to_string(),
    }
}

/// Renders rows as a JSON array (hand-rolled: numbers and names only, no
/// escaping needed beyond the fixed library names).
pub fn to_json(rows: &[BlowupRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"seq_states\": {}, \"min_states\": {}, \
             \"seq_to_mt_cost\": {}, \"mt_clauses\": {}, \"mt_atoms\": {}, \
             \"mt_to_par_cost\": {}, \"par_states\": {}, \"roundtrip_seq_states\": {}}}{}\n",
            r.name,
            r.seq_states,
            r.min_states,
            r.seq_to_mt_cost,
            json_opt(&r.mt_clauses),
            json_opt(&r.mt_atoms),
            json_opt(&r.mt_to_par_cost),
            json_opt(&r.par_states),
            json_opt(&r.roundtrip_seq_states),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssga_core::convert::DEFAULT_LIMIT;

    #[test]
    fn cycle_completes_for_small_programs() {
        let row = account("or", &library::or_seq(), DEFAULT_LIMIT);
        assert_eq!(row.seq_states, 2);
        assert_eq!(row.min_states, 2);
        assert!(row.mt_clauses.is_some());
        let par = row.par_states.unwrap();
        let back = row.roundtrip_seq_states.unwrap();
        // Lemma 3.5 keeps the working set and adds one fresh NIL start.
        assert_eq!(back, par + 1);
        // The cycle can only inflate relative to the minimal floor.
        assert!(back >= row.min_states);
    }

    #[test]
    fn budget_exhaustion_yields_partial_row() {
        let row = account("big", &library::count_ones_mod_seq(64), 4);
        assert_eq!(row.mt_clauses, None);
        assert_eq!(row.par_states, None);
        assert!(row.seq_to_mt_cost > 4);
    }

    #[test]
    fn library_table_is_complete() {
        let rows = library_blowup(DEFAULT_LIMIT);
        assert_eq!(rows.len(), 10);
        for row in &rows {
            assert!(row.mt_clauses.is_some(), "{} did not convert", row.name);
            assert!(
                row.min_states <= row.seq_states,
                "{}: minimal exceeds original",
                row.name
            );
        }
    }

    #[test]
    fn tsv_shape() {
        let rows = library_blowup(DEFAULT_LIMIT);
        let tsv = to_tsv(&rows);
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), rows.len() + 1);
        assert!(lines[0].starts_with("name\t"));
        for line in &lines[1..] {
            assert_eq!(line.split('\t').count(), 9, "{line}");
        }
    }

    #[test]
    fn json_shape() {
        let rows = vec![account("or_seq", &library::or_seq(), DEFAULT_LIMIT)];
        let json = to_json(&rows);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"name\": \"or_seq\""));
        assert!(
            !json.contains("null"),
            "small program converts fully: {json}"
        );
    }
}
