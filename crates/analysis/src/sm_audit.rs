//! SM-property audit with minimal violating witness extraction.
//!
//! `SeqProgram::check_sm` decides Definition 3.2 via the coarsest
//! congruence and the swap test, but on failure reports only the violating
//! *working state*. For a lint that a human acts on, that is not enough:
//! this module reconstructs a complete, minimal witness — two input
//! sequences that are permutations of each other yet produce different
//! outputs. Minimality is global: over all violating `(w, a, b)` triples,
//! we pick the one minimizing `|prefix| + 2 + |suffix|`, where the prefix
//! is a shortest input word driving `w0` to `w` (BFS over states) and the
//! suffix is a shortest word separating `p(p(w,a),b)` from `p(p(w,b),a)`
//! (BFS over state pairs).

use fssga_core::check::{coarsest_congruence, reachable};
use fssga_core::{Id, ParProgram, SeqProgram, SmError};

use crate::diag::{Diagnostic, Report};

/// A complete, replayable violation of Definition 3.2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmWitness {
    /// Shortest input word driving `w0` to the violating state.
    pub prefix: Vec<Id>,
    /// First swapped input.
    pub a: Id,
    /// Second swapped input.
    pub b: Id,
    /// Shortest input word separating the two orderings' states.
    pub suffix: Vec<Id>,
    /// Output of `prefix ++ [a, b] ++ suffix`.
    pub out_ab: Id,
    /// Output of `prefix ++ [b, a] ++ suffix`.
    pub out_ba: Id,
}

impl SmWitness {
    /// The first of the two permuted input sequences.
    pub fn sequence_ab(&self) -> Vec<Id> {
        let mut s = self.prefix.clone();
        s.push(self.a);
        s.push(self.b);
        s.extend_from_slice(&self.suffix);
        s
    }

    /// The second permuted sequence (the same multiset, swapped pair).
    pub fn sequence_ba(&self) -> Vec<Id> {
        let mut s = self.prefix.clone();
        s.push(self.b);
        s.push(self.a);
        s.extend_from_slice(&self.suffix);
        s
    }

    /// Total witness length.
    pub fn len(&self) -> usize {
        self.prefix.len() + 2 + self.suffix.len()
    }

    /// Witnesses are never empty (they contain the swapped pair).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl std::fmt::Display for SmWitness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "eval{:?} = {} but eval{:?} = {} (same multiset, swapped pair at position {})",
            self.sequence_ab(),
            self.out_ab,
            self.sequence_ba(),
            self.out_ba,
            self.prefix.len()
        )
    }
}

/// BFS over working states: shortest input word from `w0` to every
/// reachable state. Returns `(dist, parent)` where `parent[w]` is
/// `Some((predecessor, input))` on a shortest path.
fn bfs_states(p: &SeqProgram) -> (Vec<usize>, Vec<Option<(usize, Id)>>) {
    let n = p.num_working();
    let mut dist = vec![usize::MAX; n];
    let mut parent: Vec<Option<(usize, Id)>> = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    dist[p.w0()] = 0;
    queue.push_back(p.w0());
    while let Some(w) = queue.pop_front() {
        for q in 0..p.num_inputs() {
            let w2 = p.step(w, q);
            if dist[w2] == usize::MAX {
                dist[w2] = dist[w] + 1;
                parent[w2] = Some((w, q));
                queue.push_back(w2);
            }
        }
    }
    (dist, parent)
}

/// Reconstructs the input word to `w` from the BFS parent map.
fn word_to(parent: &[Option<(usize, Id)>], mut w: usize) -> Vec<Id> {
    let mut rev = Vec::new();
    while let Some((prev, q)) = parent[w] {
        rev.push(q);
        w = prev;
    }
    rev.reverse();
    rev
}

/// Shortest word on which states `x` and `y` produce different outputs
/// (BFS over the pair automaton). Exists exactly when `x` and `y` are
/// behaviourally inequivalent.
fn separating_suffix(p: &SeqProgram, x: usize, y: usize) -> Option<Vec<Id>> {
    let n = p.num_working();
    let idx = |a: usize, b: usize| a * n + b;
    let mut parent: Vec<Option<(usize, Id)>> = vec![None; n * n];
    let mut seen = vec![false; n * n];
    let mut queue = std::collections::VecDeque::new();
    seen[idx(x, y)] = true;
    queue.push_back((x, y));
    while let Some((a, b)) = queue.pop_front() {
        if p.output(a) != p.output(b) {
            // Rebuild the word back to the start pair.
            let mut rev = Vec::new();
            let mut cur = idx(a, b);
            while let Some((prev, q)) = parent[cur] {
                rev.push(q);
                cur = prev;
            }
            rev.reverse();
            return Some(rev);
        }
        for q in 0..p.num_inputs() {
            let (a2, b2) = (p.step(a, q), p.step(b, q));
            if !seen[idx(a2, b2)] {
                seen[idx(a2, b2)] = true;
                parent[idx(a2, b2)] = Some((idx(a, b), q));
                queue.push_back((a2, b2));
            }
        }
    }
    None
}

/// Decides the SM property of a sequential program; on failure returns the
/// globally minimal [`SmWitness`].
pub fn check_seq_sm(p: &SeqProgram) -> Result<(), SmWitness> {
    let tables = p.input_tables();
    let refs: Vec<&[u32]> = tables.iter().map(|t| t.as_slice()).collect();
    let classes = coarsest_congruence(p.num_working(), &beta_table(p), &refs);
    let reach = reachable(p.num_working(), &[p.w0()], &refs);
    let (dist, parent) = bfs_states(p);
    let mut best: Option<SmWitness> = None;
    for (w, _) in reach.iter().enumerate().filter(|&(_, &r)| r) {
        for a in 0..p.num_inputs() {
            let wa = p.step(w, a);
            for b in (a + 1)..p.num_inputs() {
                let wab = p.step(wa, b);
                let wba = p.step(p.step(w, b), a);
                if classes[wab] == classes[wba] {
                    continue;
                }
                let suffix = separating_suffix(p, wab, wba)
                    .expect("inequivalent classes have a separating word");
                let total = dist[w] + 2 + suffix.len();
                if best.as_ref().is_none_or(|bst| total < bst.len()) {
                    let prefix = word_to(&parent, w);
                    let seq_ab: Vec<Id> = prefix
                        .iter()
                        .copied()
                        .chain([a, b])
                        .chain(suffix.iter().copied())
                        .collect();
                    let seq_ba: Vec<Id> = prefix
                        .iter()
                        .copied()
                        .chain([b, a])
                        .chain(suffix.iter().copied())
                        .collect();
                    best = Some(SmWitness {
                        prefix,
                        a,
                        b,
                        out_ab: p.eval_seq(&seq_ab),
                        out_ba: p.eval_seq(&seq_ba),
                        suffix,
                    });
                }
            }
        }
    }
    match best {
        None => Ok(()),
        Some(w) => Err(w),
    }
}

fn beta_table(p: &SeqProgram) -> Vec<u32> {
    (0..p.num_working()).map(|w| p.output(w) as u32).collect()
}

/// Lint entry point: audits a sequential program's SM property. A
/// violation is an error carrying the replayable witness pair.
pub fn audit_seq(subject: &str, p: &SeqProgram) -> Report {
    let mut report = Report::new();
    if let Err(w) = check_seq_sm(p) {
        report.push(
            Diagnostic::error(
                "sm-audit",
                subject,
                format!(
                    "not an SM function: order of inputs changes the output \
                     (minimal witness has length {})",
                    w.len()
                ),
            )
            .with_witness(w.to_string()),
        );
    }
    report
}

/// Lint entry point for parallel programs: delegates to the congruence
/// check of Definition 3.4 (the counterexample there is a pair of working
/// values, already named in the error).
pub fn audit_par(subject: &str, p: &ParProgram) -> Report {
    let mut report = Report::new();
    match p.check_sm() {
        Ok(()) => {}
        Err(SmError::NotSymmetric(why)) => {
            report.push(
                Diagnostic::error("sm-audit", subject, "not an SM function").with_witness(why),
            );
        }
        Err(e) => {
            report.push(Diagnostic::warning(
                "sm-audit",
                subject,
                format!("SM property not decided: {e}"),
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssga_core::library;

    #[test]
    fn sm_programs_pass() {
        for p in [
            library::or_seq(),
            library::and_seq(),
            library::parity_seq(),
            library::count_ones_mod_seq(4),
            library::max_state_seq(3),
            library::all_equal_seq(3),
        ] {
            assert!(check_seq_sm(&p).is_ok());
        }
    }

    #[test]
    fn last_input_witness_is_minimal_and_replays() {
        // "Last input": the canonical non-SM program. The minimal witness
        // is the bare swapped pair — length 2.
        let p = SeqProgram::from_fn(2, 3, 2, 2, |_, q| q, |w| if w == 2 { 0 } else { w }).unwrap();
        let w = check_seq_sm(&p).unwrap_err();
        assert_eq!(w.len(), 2, "witness {w}");
        assert_eq!(p.eval_seq(&w.sequence_ab()), w.out_ab);
        assert_eq!(p.eval_seq(&w.sequence_ba()), w.out_ba);
        assert_ne!(w.out_ab, w.out_ba);
        // The two sequences are permutations of each other.
        let (mut x, mut y) = (w.sequence_ab(), w.sequence_ba());
        x.sort_unstable();
        y.sort_unstable();
        assert_eq!(x, y);
    }

    #[test]
    fn witness_needing_a_suffix() {
        // "First input wins, revealed only at length >= 3": every sequence
        // of length <= 2 outputs 0, so the swapped pair alone never
        // disagrees — the minimal witness must carry a flush suffix.
        // States: 0 = start; 1,2 = (first input, len 1); 3,4 = (first
        // input, len 2); 5,6 = (first input, len >= 3, revealed).
        let p = SeqProgram::from_fn(
            2,
            7,
            2,
            0,
            |w, q| match w {
                0 => 1 + q,
                1 | 2 => w + 2,
                3 | 4 => w + 2,
                _ => w,
            },
            |w| usize::from(w == 6),
        )
        .unwrap();
        let w = check_seq_sm(&p).unwrap_err();
        assert!(!w.suffix.is_empty(), "needs a flush suffix: {w}");
        assert_eq!(w.len(), 3, "minimal witness is pair + one flush: {w}");
        assert_ne!(p.eval_seq(&w.sequence_ab()), p.eval_seq(&w.sequence_ba()));
    }

    #[test]
    fn audit_reports_error_with_witness() {
        let p = SeqProgram::from_fn(2, 3, 2, 2, |_, q| q, |w| if w == 2 { 0 } else { w }).unwrap();
        let report = audit_seq("last_input", &p);
        assert_eq!(report.error_count(), 1);
        assert!(report.diagnostics[0].witness.is_some());
    }

    #[test]
    fn par_audit_passes_library() {
        for p in [
            library::or_par(),
            library::sum_mod_par(3),
            library::max_state_par(4),
        ] {
            assert!(audit_par("lib", &p).is_clean());
        }
    }

    #[test]
    fn par_audit_rejects_noncommutative() {
        // "Left projection" combine: p(a, b) = a. Tree order matters.
        let p = ParProgram::from_fn(2, 2, 2, |q| q, |a, _| a, |w| w).unwrap();
        let report = audit_par("left_proj", &p);
        assert_eq!(report.error_count(), 1);
        assert!(report.diagnostics[0].witness.is_some());
    }

    #[test]
    fn unreachable_order_sensitivity_is_ignored() {
        // Order-sensitive only from an unreachable state: still SM.
        let p = SeqProgram::from_fn(
            2,
            4,
            2,
            0,
            |w, q| match (w, q) {
                (3, q) => q,
                (w, q) => (w | q) & 1,
            },
            |w| w & 1,
        )
        .unwrap();
        assert!(check_seq_sm(&p).is_ok());
    }
}
