//! Totality and determinism audit over *raw* program tables.
//!
//! The typed constructors (`SeqProgram::new`, `ModThreshProgram::new`)
//! already reject malformed tables, so a constructed program is total by
//! construction. Tables do not always arrive through those constructors,
//! though — conversion pipelines, future (de)serialization, and generated
//! code all produce raw `Vec<u32>`s first — and a constructor that rejects
//! with the *first* violation is a poor audit tool. This module checks raw
//! tables exhaustively and reports every missing or out-of-range entry
//! with its coordinates, plus decision lists with no default arm.

use fssga_core::{Id, ModThreshProgram, Prop, SeqProgram};

use crate::diag::{Diagnostic, Report};

/// Raw sequential-program tables, before validation.
#[derive(Clone, Debug)]
pub struct RawSeqTables {
    /// `|Q|`.
    pub num_inputs: usize,
    /// `|W|`.
    pub num_working: usize,
    /// `|R|`.
    pub num_outputs: usize,
    /// Starting working state.
    pub w0: Id,
    /// Transition table, row-major `[w * num_inputs + q]`.
    pub p: Vec<u32>,
    /// Output table `[w]`.
    pub beta: Vec<u32>,
}

/// Raw decision list, before validation. `default: None` models a decision
/// list with no default arm — representable here precisely so the audit
/// can reject it (Definition 3.6 requires the default result `r_c`).
#[derive(Clone, Debug)]
pub struct RawDecisionList {
    /// `|Q|`.
    pub num_inputs: usize,
    /// `|R|`.
    pub num_outputs: usize,
    /// The guarded clauses.
    pub clauses: Vec<(Prop, Id)>,
    /// The default arm, if present.
    pub default: Option<Id>,
}

/// Audits raw sequential tables for totality (every `(w, q)` has an entry)
/// and determinism of the encoding (every entry lands in range). Reports
/// *all* violations, with coordinates.
pub fn audit_seq_tables(subject: &str, raw: &RawSeqTables) -> Report {
    let mut report = Report::new();
    let expected = raw.num_working * raw.num_inputs;
    if raw.p.len() < expected {
        let missing = expected - raw.p.len();
        let first = raw.p.len();
        report.push(Diagnostic::error(
            "totality",
            subject,
            format!(
                "transition table is partial: {missing} of {expected} entries missing \
                     (first missing entry is (w, q) = ({}, {}))",
                first / raw.num_inputs,
                first % raw.num_inputs
            ),
        ));
    } else if raw.p.len() > expected {
        report.push(Diagnostic::error(
            "totality",
            subject,
            format!(
                "transition table has {} entries, expected {expected}",
                raw.p.len()
            ),
        ));
    }
    for (idx, &w) in raw.p.iter().enumerate().take(expected) {
        if w as usize >= raw.num_working {
            report.push(Diagnostic::error(
                "totality",
                subject,
                format!(
                    "p({}, {}) = {w} is out of range (|W| = {})",
                    idx / raw.num_inputs,
                    idx % raw.num_inputs,
                    raw.num_working
                ),
            ));
        }
    }
    if raw.beta.len() != raw.num_working {
        report.push(Diagnostic::error(
            "totality",
            subject,
            format!(
                "output table has {} entries, expected {}",
                raw.beta.len(),
                raw.num_working
            ),
        ));
    }
    for (w, &r) in raw.beta.iter().enumerate().take(raw.num_working) {
        if r as usize >= raw.num_outputs {
            report.push(Diagnostic::error(
                "totality",
                subject,
                format!(
                    "beta({w}) = {r} is out of range (|R| = {})",
                    raw.num_outputs
                ),
            ));
        }
    }
    if raw.w0 >= raw.num_working {
        report.push(Diagnostic::error(
            "totality",
            subject,
            format!(
                "w0 = {} is out of range (|W| = {})",
                raw.w0, raw.num_working
            ),
        ));
    }
    report
}

/// Audits a raw decision list: a missing default arm is an error (the
/// function would be partial — undefined whenever no guard fires), as are
/// out-of-range results and malformed atoms.
pub fn audit_decision_list(subject: &str, raw: &RawDecisionList) -> Report {
    let mut report = Report::new();
    match raw.default {
        None => report.push(Diagnostic::error(
            "totality",
            subject,
            "decision list has no default arm: the function is undefined on inputs where no guard fires",
        )),
        Some(d) if d >= raw.num_outputs => report.push(Diagnostic::error(
            "totality",
            subject,
            format!("default result {d} is out of range (|R| = {})", raw.num_outputs),
        )),
        Some(_) => {}
    }
    for (i, (_, r)) in raw.clauses.iter().enumerate() {
        if *r >= raw.num_outputs {
            report.push(Diagnostic::error(
                "totality",
                subject,
                format!(
                    "clause {i} result {r} is out of range (|R| = {})",
                    raw.num_outputs
                ),
            ));
        }
    }
    // Atom validation is delegated to the constructor: rebuild with a
    // placeholder default and surface its verdict.
    if let Err(e) = ModThreshProgram::new(
        raw.num_inputs,
        raw.num_outputs,
        raw.clauses.iter().map(|(p, _)| (p.clone(), 0)).collect(),
        0,
    ) {
        report.push(Diagnostic::error(
            "totality",
            subject,
            format!("malformed atoms: {e}"),
        ));
    }
    report
}

/// Totality audit of an already-constructed sequential program: re-derives
/// the raw tables and re-checks them. Clean by construction — kept in the
/// lint as defense-in-depth against invariant-breaking refactors.
pub fn audit_seq(subject: &str, p: &SeqProgram) -> Report {
    let mut ptab = Vec::with_capacity(p.num_working() * p.num_inputs());
    for w in 0..p.num_working() {
        for q in 0..p.num_inputs() {
            ptab.push(p.step(w, q) as u32);
        }
    }
    let beta = (0..p.num_working()).map(|w| p.output(w) as u32).collect();
    audit_seq_tables(
        subject,
        &RawSeqTables {
            num_inputs: p.num_inputs(),
            num_working: p.num_working(),
            num_outputs: p.num_outputs(),
            w0: p.w0(),
            p: ptab,
            beta,
        },
    )
}

/// Totality audit of a constructed mod-thresh program.
pub fn audit_mt(subject: &str, mt: &ModThreshProgram) -> Report {
    audit_decision_list(
        subject,
        &RawDecisionList {
            num_inputs: mt.num_inputs(),
            num_outputs: mt.num_outputs(),
            clauses: mt.clauses().map(|(p, r)| (p.clone(), r)).collect(),
            default: Some(mt.default_result()),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssga_core::library;

    #[test]
    fn complete_tables_are_clean() {
        assert!(audit_seq("parity", &library::parity_seq()).is_clean());
        assert!(audit_mt("two_coloring", &library::two_coloring_blank_mt()).is_clean());
    }

    #[test]
    fn missing_entries_located() {
        let raw = RawSeqTables {
            num_inputs: 2,
            num_working: 3,
            num_outputs: 2,
            w0: 0,
            p: vec![0, 1, 2], // 3 of 6 entries
            beta: vec![0, 1, 0],
        };
        let report = audit_seq_tables("partial", &raw);
        assert_eq!(report.error_count(), 1);
        let msg = &report.diagnostics[0].message;
        assert!(msg.contains("3 of 6"), "{msg}");
        assert!(msg.contains("(1, 1)"), "{msg}");
    }

    #[test]
    fn every_out_of_range_entry_reported() {
        let raw = RawSeqTables {
            num_inputs: 2,
            num_working: 2,
            num_outputs: 2,
            w0: 0,
            p: vec![0, 9, 1, 7], // two bad entries
            beta: vec![0, 5],    // one bad entry
        };
        let report = audit_seq_tables("ranges", &raw);
        assert_eq!(report.error_count(), 3);
    }

    #[test]
    fn bad_start_state_reported() {
        let raw = RawSeqTables {
            num_inputs: 1,
            num_working: 2,
            num_outputs: 1,
            w0: 5,
            p: vec![0, 1],
            beta: vec![0, 0],
        };
        assert_eq!(audit_seq_tables("bad_w0", &raw).error_count(), 1);
    }

    #[test]
    fn missing_default_arm_rejected() {
        let raw = RawDecisionList {
            num_inputs: 2,
            num_outputs: 2,
            clauses: vec![(Prop::some(0), 1)],
            default: None,
        };
        let report = audit_decision_list("no_default", &raw);
        assert_eq!(report.error_count(), 1);
        assert!(report.diagnostics[0].message.contains("no default arm"));
    }

    #[test]
    fn out_of_range_results_rejected() {
        let raw = RawDecisionList {
            num_inputs: 2,
            num_outputs: 2,
            clauses: vec![(Prop::some(0), 7)],
            default: Some(9),
        };
        assert_eq!(audit_decision_list("bad_results", &raw).error_count(), 2);
    }

    #[test]
    fn malformed_atom_rejected() {
        let raw = RawDecisionList {
            num_inputs: 2,
            num_outputs: 2,
            clauses: vec![(Prop::mod_count(0, 5, 3), 1)], // r >= m
            default: Some(0),
        };
        assert_eq!(audit_decision_list("bad_atom", &raw).error_count(), 1);
    }
}
