//! The shipped lint pass: audits every built-in library program and every
//! FSSGA protocol in the workspace.
//!
//! `lint_all` is what the `fssga-lint` binary and the CI gate run. It must
//! stay clean on the shipped set — a lint error here means a program in
//! the library violates its own definition, a protocol breaks its
//! declared bounds, or dead code crept into a decision list.

use fssga_core::convert::DEFAULT_LIMIT;
use fssga_core::library;
use fssga_protocols::bfs::{Bfs, BfsState};
use fssga_protocols::census::{Census, FmSketch};
use fssga_protocols::election::{ElectState, Election};
use fssga_protocols::firing_squad::{FiringSquad, FsspState};
use fssga_protocols::greedy_tourist::{TourLabel, TouristBfs};
use fssga_protocols::random_walk::{RandomWalk, WalkState};
use fssga_protocols::shortest_paths::ShortestPaths;
use fssga_protocols::synchronizer::{Alpha, AlphaState};
use fssga_protocols::traversal::{TravState, Traversal};
use fssga_protocols::two_coloring::TwoColoring;

use crate::compliance::{self, ProbeConfig};
use crate::diag::Report;
use crate::{deadcode, sm_audit, totality};

/// Class-space budget for exact clause-liveness decisions.
pub const MT_LIMIT: u128 = 1 << 16;

/// Audits every library program: dead code, totality, and the SM property.
pub fn lint_library() -> Report {
    let mut report = Report::new();

    let seqs = [
        ("library::or_seq", library::or_seq()),
        ("library::and_seq", library::and_seq()),
        ("library::parity_seq", library::parity_seq()),
        (
            "library::count_ones_mod_seq(3)",
            library::count_ones_mod_seq(3),
        ),
        (
            "library::count_ones_mod_seq(5)",
            library::count_ones_mod_seq(5),
        ),
        ("library::max_state_seq(4)", library::max_state_seq(4)),
        ("library::min_state_seq(4)", library::min_state_seq(4)),
        (
            "library::count_at_least_seq(3,1,3)",
            library::count_at_least_seq(3, 1, 3),
        ),
        ("library::all_equal_seq(3)", library::all_equal_seq(3)),
    ];
    for (name, p) in &seqs {
        report.extend(totality::audit_seq(name, p));
        report.extend(deadcode::audit_seq(name, p));
        report.extend(sm_audit::audit_seq(name, p));
    }

    let pars = [
        ("library::or_par", library::or_par()),
        ("library::sum_mod_par(4)", library::sum_mod_par(4)),
        ("library::max_state_par(5)", library::max_state_par(5)),
    ];
    for (name, p) in &pars {
        report.extend(deadcode::audit_par(name, p));
        report.extend(sm_audit::audit_par(name, p));
    }

    let mts = [
        (
            "library::two_coloring_blank_mt",
            library::two_coloring_blank_mt(),
        ),
        ("library::parity_mt(4,1)", library::parity_mt(4, 1)),
        (
            "library::exactly_one_mt(4,1)",
            library::exactly_one_mt(4, 1),
        ),
    ];
    for (name, p) in &mts {
        report.extend(totality::audit_mt(name, p));
        report.extend(deadcode::audit_mt(name, p, MT_LIMIT));
    }

    report
}

/// Audits every FSSGA protocol (S6–S15 of the design inventory, plus the
/// firing squad): the query-signature compliance probe. The §2 bridge
/// walk (S7) predates the formal model — an agent simulation, not a
/// `Protocol` — so it has no query signature to audit.
pub fn lint_protocols() -> Report {
    let cfg = ProbeConfig::default();
    let mut report = Report::new();
    report.extend(compliance::audit_protocol(
        "protocols::Census<6> (S6)",
        Census::<6>,
        |v| FmSketch::<6>((v % 13) as u16 & 0x3F),
        &cfg,
    ));
    report.extend(compliance::audit_protocol(
        "protocols::ShortestPaths<64> (S8)",
        ShortestPaths::<64>,
        |v| ShortestPaths::<64>::init(v == 0),
        &cfg,
    ));
    report.extend(compliance::audit_protocol(
        "protocols::TwoColoring (S9)",
        TwoColoring,
        |v| TwoColoring::init(v == 0),
        &cfg,
    ));
    report.extend(compliance::audit_protocol(
        "protocols::Alpha<TwoColoring> (S10)",
        Alpha(TwoColoring),
        |v| AlphaState::init(TwoColoring::init(v == 0)),
        &cfg,
    ));
    report.extend(compliance::audit_protocol(
        "protocols::Bfs (S11)",
        Bfs,
        |v| BfsState::init(v == 0, v == 5),
        &cfg,
    ));
    report.extend(compliance::audit_protocol(
        "protocols::RandomWalk (S12)",
        RandomWalk,
        |v| {
            if v == 0 {
                WalkState::Flip
            } else {
                WalkState::Blank
            }
        },
        &cfg,
    ));
    report.extend(compliance::audit_protocol(
        "protocols::Traversal (S13)",
        Traversal,
        |v| TravState::init(v == 0),
        &cfg,
    ));
    report.extend(compliance::audit_protocol(
        "protocols::TouristBfs (S14)",
        TouristBfs,
        |v| {
            if v == 0 {
                TourLabel::L0
            } else {
                TourLabel::Target
            }
        },
        &cfg,
    ));
    report.extend(compliance::audit_protocol(
        "protocols::Election (S15)",
        Election,
        |_| ElectState::init(),
        &cfg,
    ));
    report.extend(compliance::audit_protocol(
        "protocols::FiringSquad (S21)",
        FiringSquad,
        |v| FsspState::init(v == 0),
        &cfg,
    ));
    report
}

/// The full lint pass: library programs, then protocols.
pub fn lint_all() -> Report {
    let mut report = lint_library();
    report.extend(lint_protocols());
    report
}

/// Blow-up accounting at the default conversion budget (re-exported here
/// so the binary and CI call one module).
pub fn blowup_table() -> Vec<crate::blowup::BlowupRow> {
    crate::blowup::library_blowup(DEFAULT_LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_library_is_lint_clean() {
        let report = lint_library();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.warning_count(), 0, "{report}");
    }

    #[test]
    fn blowup_table_covers_library() {
        let rows = blowup_table();
        assert!(rows.len() >= 10);
    }
}
