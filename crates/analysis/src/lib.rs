//! Static analysis for FSSGA programs and protocols.
//!
//! The paper's central artifact is a *program class* — sequential,
//! parallel and mod-thresh programs (Theorem 3.7) — whose conversions blow
//! up exponentially and whose SM property is a semantic side condition.
//! The rest of the workspace checks these properties dynamically, at
//! simulation time; this crate checks them *statically*, before a single
//! round runs:
//!
//! * [`deadcode`] — unreachable working states (sequential), unobtainable
//!   working values (parallel), and dead decision-list clauses with exact
//!   shadowing proofs or unsatisfiability verdicts over the Lemma 3.8/3.9
//!   count-class space.
//! * [`totality`] — raw-table audits: missing or out-of-range transition
//!   entries, decision lists with no default arm.
//! * [`sm_audit`] — the Definition 3.2 / 3.4 symmetry conditions, with a
//!   globally minimal replayable witness pair on failure.
//! * [`compliance`] — abstract interpretation of protocols in the
//!   query-signature domain: the per-state threshold/modulus signature
//!   must reach a fixed point (finite-state realisability) within the
//!   protocol's declared `MAX_THRESHOLD` / `MODULI_LCM` bounds.
//! * [`blowup`] — machine-readable accounting of state-count growth
//!   through the Theorem 3.7 conversion cycle per library program.
//! * [`lint`] — the shipped pass over every library program and protocol;
//!   the `fssga-lint` binary runs it and exits non-zero on violations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blowup;
pub mod compliance;
pub mod deadcode;
pub mod lint;
pub mod sm_audit;
pub mod totality;

/// Diagnostics now live in `fssga-core` (so the semantic model checker in
/// `fssga-verify` can emit them without depending on this crate);
/// re-exported here so `fssga_analysis::diag::...` paths keep working.
pub use fssga_core::diag;
pub use fssga_core::diag::{Diagnostic, Report, Severity};
