//! `fssga-lint` — static analysis gate for the FSSGA workspace.
//!
//! Audits every built-in library program (dead code, totality, SM
//! property) and every FSSGA protocol (query-signature compliance against
//! declared bounds), prints the findings, and exits non-zero if any
//! error-severity finding exists.
//!
//! Usage:
//!     fssga-lint              # run the full lint pass
//!     fssga-lint --blowup     # also print the conversion blow-up table (TSV)
//!     fssga-lint --blowup-json  # ... as JSON

use fssga_analysis::blowup;
use fssga_analysis::lint;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for a in &args {
        if a != "--blowup" && a != "--blowup-json" {
            eprintln!("unknown flag {a}; usage: fssga-lint [--blowup | --blowup-json]");
            std::process::exit(2);
        }
    }

    println!("fssga-lint: auditing library programs...");
    let mut report = lint::lint_library();
    println!("fssga-lint: auditing protocols (compliance probes)...");
    report.extend(lint::lint_protocols());

    println!("{report}");

    if args.iter().any(|a| a == "--blowup") {
        println!("\nconversion blow-up accounting (Lemmas 3.5 / 3.8 / 3.9):");
        print!("{}", blowup::to_tsv(&lint::blowup_table()));
    }
    if args.iter().any(|a| a == "--blowup-json") {
        println!("{}", blowup::to_json(&lint::blowup_table()));
    }

    if !report.is_clean() {
        std::process::exit(1);
    }
}
