//! `fssga-lint` — static analysis gate for the FSSGA workspace.
//!
//! Audits every built-in library program (dead code, totality, SM
//! property) and every FSSGA protocol (query-signature compliance against
//! declared bounds), prints the findings, and exits non-zero if any
//! error-severity finding exists.
//!
//! Usage:
//!     fssga-lint              # run the full lint pass
//!     fssga-lint --blowup     # also print the conversion blow-up table (TSV)
//!     fssga-lint --blowup-json  # ... as JSON
//!     fssga-lint verify       # semantic model checking of every shipped
//!                             # protocol at full contract scale

use fssga_analysis::blowup;
use fssga_analysis::lint;

/// Runs the `fssga-verify` model checker over every shipped protocol at
/// full contract coverage, prints per-protocol reports, and exits 1 on
/// any error-severity finding.
fn run_verify() -> ! {
    println!("fssga-lint verify: model-checking shipped protocol contracts...");
    let results = fssga_verify::verify_shipped();
    let mut failed = 0usize;
    for r in &results {
        let status = if r.report.is_clean() { "ok" } else { "FAIL" };
        println!("\n=== {} [{status}] ===", r.name);
        print!("{}", r.report);
        if !r.report.is_clean() {
            failed += 1;
        }
    }
    println!(
        "\nfssga-lint verify: {}/{} protocols clean",
        results.len() - failed,
        results.len()
    );
    std::process::exit(if failed > 0 { 1 } else { 0 });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("verify") {
        if args.len() > 1 {
            eprintln!("fssga-lint verify takes no further arguments");
            std::process::exit(2);
        }
        run_verify();
    }
    for a in &args {
        if a != "--blowup" && a != "--blowup-json" {
            eprintln!("unknown flag {a}; usage: fssga-lint [verify | --blowup | --blowup-json]");
            std::process::exit(2);
        }
    }

    println!("fssga-lint: auditing library programs...");
    let mut report = lint::lint_library();
    println!("fssga-lint: auditing protocols (compliance probes)...");
    report.extend(lint::lint_protocols());

    println!("{report}");

    if args.iter().any(|a| a == "--blowup") {
        println!("\nconversion blow-up accounting (Lemmas 3.5 / 3.8 / 3.9):");
        print!("{}", blowup::to_tsv(&lint::blowup_table()));
    }
    if args.iter().any(|a| a == "--blowup-json") {
        println!("{}", blowup::to_json(&lint::blowup_table()));
    }

    if !report.is_clean() {
        std::process::exit(1);
    }
}
