//! `fssga-chaos` — smoke fault-campaign gate for the FSSGA workspace.
//!
//! Runs a suite of deterministic fault campaigns (lint-gate style): random
//! fault plans against the fault-tolerant algorithms under every
//! scheduling policy, a replay-determinism audit, and a deliberately
//! broken oracle whose counterexample is delta-debugged and printed with
//! its witness. Exits non-zero if any campaign that should be reasonably
//! correct is not, or if a trace fails to replay bit-for-bit.
//!
//! Usage:
//!     fssga-chaos                     # run the smoke suite
//!     fssga-chaos --seed N            # override the base seed
//!     fssga-chaos --trace-out PATH    # also write a JSONL round/fault trace
//!     fssga-chaos --churn-out PATH    # write a serialized smoke churn stream
//!     fssga-chaos --churn-replay PATH # replay a churn stream, audit determinism
//!
//! The trace artifact is one JSON-lines record per synchronous round
//! (`{"t":"round",...}` — see `fssga_engine::RoundMetrics::to_jsonl`)
//! interleaved with the fault surgeries the campaign applied
//! (`{"t":"fault",...}`), from a census campaign on the smoke grid.
//!
//! `--churn-replay` parses a `churn-stream v1` text file (the format
//! `--churn-out` emits), replays it twice against the 8x8 smoke torus —
//! census on the compiled kernel, continuous structural oracle every
//! round — and fails unless the two runs agree bit-for-bit (reports and
//! final states) with zero oracle failures.

use fssga_engine::campaign::{Campaign, RunPolicy};
use fssga_engine::faults::{FaultEvent, FaultKind, FaultPlan};
use fssga_engine::sensitivity::{Sensitive, Verdict};
use fssga_engine::{
    run_churn_oracle_traced, AsyncPolicy, ChurnConfig, ChurnOptions, ChurnStream, Network,
    NullTracer,
};
use fssga_graph::rng::Xoshiro256;
use fssga_graph::{generators, DynGraph, Graph, NodeId};
use fssga_protocols::census::{Census, FmSketch};
use fssga_protocols::shortest_paths::{labels_as_distances, ShortestPaths};
use fssga_protocols::synchronizer::BetaSynchronizer;

const POLICIES: [RunPolicy; 4] = [
    RunPolicy::Sync,
    RunPolicy::Async(AsyncPolicy::UniformRandom),
    RunPolicy::Async(AsyncPolicy::RoundRobin),
    RunPolicy::Async(AsyncPolicy::RandomPermutation),
];

fn policy_name(p: RunPolicy) -> &'static str {
    match p {
        RunPolicy::Sync => "sync",
        RunPolicy::Async(AsyncPolicy::UniformRandom) => "async-uniform",
        RunPolicy::Async(AsyncPolicy::RoundRobin) => "async-round-robin",
        RunPolicy::Async(AsyncPolicy::RandomPermutation) => "async-random-permutation",
    }
}

fn fault_str(e: &FaultEvent) -> String {
    match e.kind {
        FaultKind::Edge(u, v) => format!("t={} edge({u},{v})", e.time),
        FaultKind::Node(v) => format!("t={} node({v})", e.time),
        FaultKind::AddNode(v) => format!("t={} add-node({v})", e.time),
        FaultKind::AddEdge(u, v) => format!("t={} add-edge({u},{v})", e.time),
    }
}

/// A census campaign with fixed sketches, read at node 0.
fn census_campaign(g: &Graph, seed: u64) -> Campaign<'static, Census<12>, u16> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let sketches: Vec<FmSketch<12>> = (0..g.n())
        .map(|_| FmSketch::random_init(&mut rng))
        .collect();
    let reference = sketches.clone();
    Campaign::new(
        g,
        || Census::<12>,
        move |v| sketches[v as usize],
        |net: &Network<Census<12>>| net.graph().is_alive(0).then(|| net.state(0).0),
        move |g: &Graph| {
            let d = DynGraph::from_graph(g);
            d.component_of(0)
                .into_iter()
                .fold(0u16, |acc, v| acc | reference[v as usize].0)
        },
    )
    .seed(seed)
}

/// A shortest-paths campaign (sink 0), judged on the surviving labels.
fn sp_campaign(g: &Graph, seed: u64) -> Campaign<'static, ShortestPaths<64>, Vec<(NodeId, u32)>> {
    Campaign::new(
        g,
        || ShortestPaths::<64>,
        |v| ShortestPaths::<64>::init(v == 0),
        |net: &Network<ShortestPaths<64>>| {
            net.graph().is_alive(0).then(|| {
                let dist = labels_as_distances(net.states());
                net.graph()
                    .alive_nodes()
                    .map(|v| (v, dist[v as usize]))
                    .collect::<Vec<_>>()
            })
        },
        |g: &Graph| {
            let dist = fssga_graph::exact::bfs_distances(g, &[0]);
            g.nodes()
                .filter(|&v| g.degree(v) > 0)
                .map(|v| (v, dist[v as usize]))
                .collect::<Vec<_>>()
        },
    )
    .seed(seed)
}

/// Runs one campaign under every policy; returns the number of failures.
fn smoke<P, A>(name: &str, make: impl Fn(u64) -> Campaign<'static, P, A>, seed: u64) -> u32
where
    P: fssga_engine::Protocol,
    A: PartialEq + Clone,
{
    let mut failures = 0;
    for (i, &policy) in POLICIES.iter().enumerate() {
        let campaign = make(seed + i as u64).policy(policy);
        let out = campaign.run();
        let schedule: Vec<String> = out.trace.schedule.iter().map(fault_str).collect();
        let ok = out.verdict == Verdict::ReasonablyCorrect;
        // Determinism audit: the emitted trace must replay bit-for-bit.
        let replay_ok = campaign.replay(&out.trace).trace == out.trace;
        println!(
            "  {name:<16} {:<24} faults=[{}] verdict={:?} replay={}",
            policy_name(policy),
            schedule.join(", "),
            out.verdict,
            if replay_ok { "ok" } else { "MISMATCH" },
        );
        if !ok || !replay_ok {
            failures += 1;
            if !ok {
                // Print the minimized schedule so the log is actionable.
                if let Some(shrunk) = campaign.shrink() {
                    let min: Vec<String> = shrunk.schedule.iter().map(fault_str).collect();
                    println!("    shrunk counterexample: [{}]", min.join(", "));
                }
            }
        }
    }
    failures
}

/// The per-node census sketch used by the churn replay: a pure function
/// of `(seed, v)` so arrivals get the same sketch in every run.
fn churn_sketch(seed: u64, v: NodeId) -> FmSketch<12> {
    let mut rng = Xoshiro256::seed_from_u64(seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    FmSketch::random_init(&mut rng)
}

/// One churn replay run against the smoke torus: census on the compiled
/// kernel, continuous structural oracle (live-edge count against the
/// sliding topology window — snapshots preserve live edges exactly)
/// every round.
fn churn_run(stream: &ChurnStream, seed: u64) -> (fssga_engine::ChurnReport, Vec<FmSketch<12>>) {
    let g = generators::torus(8, 8);
    let mut net = Network::new_compiled(&g, Census::<12>, |v| churn_sketch(seed, v));
    let report = run_churn_oracle_traced(
        &mut net,
        stream,
        &ChurnOptions::default(),
        |v| churn_sketch(seed, v),
        |net: &Network<Census<12>>| Some(net.graph().m()),
        |g: &Graph| g.m(),
        &mut NullTracer,
    );
    (report, net.states().to_vec())
}

/// Replays a serialized churn stream twice and audits that the runs are
/// bit-identical with a clean oracle; returns the number of failures.
fn churn_replay(path: &str, seed: u64) -> u32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fssga-chaos: cannot read {path}: {e}");
            return 1;
        }
    };
    let stream = match ChurnStream::from_text(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fssga-chaos: bad churn stream in {path}: {e}");
            return 1;
        }
    };
    let (ra, fa) = churn_run(&stream, seed);
    let (rb, fb) = churn_run(&stream, seed);
    let deterministic = ra == rb && fa == fb;
    println!(
        "  churn-replay {path}: {} scheduled event(s), {} applied ({} arrivals, {} departures, \
         {} skipped) over {} round(s); work/event={:.2} oracle={}/{} clean replay={}",
        stream.len(),
        ra.events(),
        ra.arrivals,
        ra.departures,
        ra.skipped,
        ra.rounds,
        ra.work_per_event(),
        ra.oracle_checks - ra.oracle_failures,
        ra.oracle_checks,
        if deterministic { "ok" } else { "MISMATCH" },
    );
    u32::from(!deterministic) + u32::from(ra.oracle_failures > 0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 0xC4A05u64;
    let mut trace_out: Option<String> = None;
    let mut churn_out: Option<String> = None;
    let mut churn_replay_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                }
            },
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(p.clone()),
                None => {
                    eprintln!("--trace-out needs a path");
                    std::process::exit(2);
                }
            },
            "--churn-out" => match it.next() {
                Some(p) => churn_out = Some(p.clone()),
                None => {
                    eprintln!("--churn-out needs a path");
                    std::process::exit(2);
                }
            },
            "--churn-replay" => match it.next() {
                Some(p) => churn_replay_path = Some(p.clone()),
                None => {
                    eprintln!("--churn-replay needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "unknown flag {other}; usage: fssga-chaos [--seed N] [--trace-out PATH] \
                     [--churn-out PATH] [--churn-replay PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let mut failures = 0u32;

    // --- Optional artifact: a replayable churn stream on the smoke torus. ---
    if let Some(path) = churn_out.as_deref() {
        let g = generators::torus(8, 8);
        let stream = ChurnStream::generate(
            &DynGraph::from_graph(&g),
            &ChurnConfig {
                seed,
                horizon: 120,
                rate: 2.0,
                protected: vec![0],
                ..ChurnConfig::default()
            },
        );
        std::fs::write(path, stream.to_text()).expect("write churn stream");
        println!(
            "fssga-chaos: wrote churn stream ({} event(s) over {} round(s)) to {path}",
            stream.len(),
            stream.horizon()
        );
    }

    // --- Churn replay: determinism + continuous-oracle audit. ---
    if let Some(path) = churn_replay_path.as_deref() {
        println!("fssga-chaos: churn stream replay...");
        failures += churn_replay(path, seed);
    }

    // --- Smoke campaigns: fault-tolerant algorithms must stay correct. ---
    println!("fssga-chaos: smoke campaigns (random non-critical fault plans)...");
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let grid = generators::grid(5, 5);
    let gnp = generators::connected_gnp(24, 0.2, &mut rng);
    {
        let base = DynGraph::from_graph(&grid);
        let plan = FaultPlan::random(&base, 4, 12, 0.7, &[0], &mut rng);
        failures += smoke(
            "census/grid",
            |s| census_campaign(&grid, s).horizon(40).plan(plan.clone()),
            seed,
        );
    }
    {
        let base = DynGraph::from_graph(&gnp);
        let plan = FaultPlan::random(&base, 3, 10, 0.8, &[0], &mut rng);
        failures += smoke(
            "sssp/gnp",
            |s| sp_campaign(&gnp, s).horizon(80).plan(plan.clone()),
            seed + 10,
        );
    }

    // --- Optional artifact: replayable round/fault trace of one campaign. ---
    if let Some(path) = trace_out.as_deref() {
        use std::io::Write;
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x7ACE);
        let base = DynGraph::from_graph(&grid);
        let plan = FaultPlan::random(&base, 4, 12, 0.7, &[0], &mut rng);
        let campaign = census_campaign(&grid, seed).horizon(40).plan(plan);
        let f = std::io::BufWriter::new(std::fs::File::create(path).expect("create trace file"));
        let mut sink = fssga_engine::JsonlTrace::new(f);
        let out = campaign.run_traced(&mut sink);
        sink.into_inner().flush().expect("flush trace file");
        println!(
            "fssga-chaos: wrote round/fault trace ({} fault(s), verdict={:?}) to {path}",
            out.trace.schedule.len(),
            out.verdict
        );
    }

    // --- Broken-oracle demo: must fail, shrink to one event, replay. ---
    println!("fssga-chaos: broken-oracle counterexample (expected to fail + shrink)...");
    let path = generators::path(10);
    let full = {
        let mut rng = Xoshiro256::seed_from_u64(seed + 20);
        let sketches: Vec<FmSketch<12>> = (0..path.n())
            .map(|_| FmSketch::random_init(&mut rng))
            .collect();
        sketches.iter().fold(0u16, |acc, s| acc | s.0)
    };
    let broken = {
        let mut rng = Xoshiro256::seed_from_u64(seed + 20);
        let sketches: Vec<FmSketch<12>> = (0..path.n())
            .map(|_| FmSketch::random_init(&mut rng))
            .collect();
        Campaign::new(
            &path,
            || Census::<12>,
            move |v| sketches[v as usize],
            |net: &Network<Census<12>>| net.graph().is_alive(0).then(|| net.state(0).0),
            move |_: &Graph| full, // ignores faults: deliberately wrong
        )
        .horizon(25)
        .plan(FaultPlan::new(vec![
            FaultEvent {
                time: 0,
                kind: FaultKind::Edge(3, 4),
            },
            FaultEvent {
                time: 8,
                kind: FaultKind::Node(9),
            },
        ]))
    };
    let out = broken.run();
    match broken.shrink() {
        Some(shrunk) if out.verdict == Verdict::Incorrect => {
            let min: Vec<String> = shrunk.schedule.iter().map(fault_str).collect();
            println!(
                "  verdict={:?}; shrunk {} -> {} event(s) in {} tests: [{}]",
                out.verdict,
                broken.current_plan().events().len(),
                shrunk.schedule.len(),
                shrunk.tests,
                min.join(", "),
            );
            let minimal = broken.run_with_schedule(&shrunk.schedule);
            let witness_len = minimal.snapshots.len();
            println!(
                "  witness chain: {witness_len} snapshot(s); replay={}",
                if broken.replay(&minimal.trace).trace == minimal.trace {
                    "ok"
                } else {
                    "MISMATCH"
                }
            );
            if shrunk.schedule.len() != 1 || broken.replay(&minimal.trace).trace != minimal.trace {
                failures += 1;
            }
        }
        _ => {
            println!("  ERROR: broken oracle did not produce a shrinkable failure");
            failures += 1;
        }
    }

    // --- Sensitivity contrast: census χ=∅ vs β synchronizer χ=Θ(n). ---
    println!("fssga-chaos: declared sensitivity contrast...");
    let cyc = generators::cycle(12);
    let census_net = census_campaign(&cyc, seed).run(); // fault-free
    let beta = BetaSynchronizer::new(&cyc, 0);
    println!(
        "  census: class={:?} |chi|=0, fault-free verdict={:?}",
        fssga_engine::SensitivityClass::Zero,
        census_net.verdict
    );
    println!(
        "  beta-synchronizer: class={:?} |chi|={} of n={}",
        beta.sensitivity_class(),
        Sensitive::critical_set(&beta).len(),
        cyc.n()
    );
    if census_net.verdict != Verdict::ReasonablyCorrect {
        failures += 1;
    }
    if Sensitive::critical_set(&beta).len() < cyc.n() - 2 {
        println!("  ERROR: beta critical set unexpectedly small");
        failures += 1;
    }

    if failures > 0 {
        eprintln!("fssga-chaos: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("fssga-chaos: all campaigns clean");
}
