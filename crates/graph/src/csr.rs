//! Immutable undirected graphs in compressed sparse row (CSR) form.

use crate::{Edge, NodeId};

/// An immutable, undirected, simple graph.
///
/// Adjacency is stored in CSR form: `targets[offsets[v]..offsets[v+1]]` are
/// the (sorted) neighbours of `v`. This is the densest practical layout: one
/// contiguous scan per neighbourhood, which is exactly the access pattern of
/// a node activation in the FSSGA engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl Graph {
    /// Builds a graph with `n` nodes from an undirected edge list.
    ///
    /// Self-loops and duplicate edges are rejected with a panic: the paper's
    /// model is over simple graphs, and silently deduplicating would mask
    /// generator bugs.
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        let mut deg = vec![0u32; n];
        for &(u, v) in edges {
            assert!(u != v, "self-loop ({u},{v}) not allowed");
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of range"
            );
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + deg[v];
        }
        let mut targets = vec![0 as NodeId; offsets[n] as usize];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for &(u, v) in edges {
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        for v in 0..n {
            let span = &mut targets[offsets[v] as usize..offsets[v + 1] as usize];
            span.sort_unstable();
            for w in span.windows(2) {
                assert!(w[0] != w[1], "duplicate edge ({v},{})", w[0]);
            }
        }
        Self { offsets, targets }
    }

    /// Builds a graph directly from CSR arrays whose rows are already
    /// sorted. Fast path for [`crate::DynGraph::snapshot`]: skips the edge
    /// list and the per-edge scatter of [`Self::from_edges`].
    pub(crate) fn from_sorted_csr(offsets: Vec<u32>, targets: Vec<NodeId>) -> Self {
        debug_assert_eq!(*offsets.last().unwrap_or(&0) as usize, targets.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        #[cfg(debug_assertions)]
        for v in 0..offsets.len().saturating_sub(1) {
            let row = &targets[offsets[v] as usize..offsets[v + 1] as usize];
            debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "row {v} not sorted");
        }
        Self { offsets, targets }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// The sorted neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Whether `{u, v}` is an edge (binary search over the sorted row).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates the node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.n() as NodeId
    }

    /// Iterates each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree Δ (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).min().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(4, &[(2, 0), (3, 0), (1, 0)]);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = triangle();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        let g2 = Graph::from_edges(3, &[(0, 1)]);
        assert!(!g2.has_edge(1, 2));
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = triangle();
        let es: Vec<Edge> = g.edges().collect();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn isolated_nodes_allowed() {
        let g = Graph::from_edges(5, &[(0, 1)]);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.m(), 1);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.max_degree(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        Graph::from_edges(2, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edges() {
        Graph::from_edges(2, &[(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        Graph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn handshake_lemma() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]);
        let degsum: usize = g.nodes().map(|v| g.degree(v)).sum();
        assert_eq!(degsum, 2 * g.m());
    }
}
