//! Incremental construction of [`Graph`]s.

use std::collections::BTreeSet;

use crate::{Edge, Graph, NodeId};

/// A set-backed edge accumulator.
///
/// Generators that add edges opportunistically (random graphs, chord
/// insertions) use this to get silent idempotence — [`Graph::from_edges`]
/// itself rejects duplicates, because for an explicit edge list a duplicate
/// is a bug, but for a generator it is often just a re-draw.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: BTreeSet<Edge>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: BTreeSet::new(),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of distinct edges added so far.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}`. Returns `true` if it was new.
    /// Self-loops are rejected with a panic.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(u != v, "self-loop ({u},{v}) not allowed");
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for n={}",
            self.n
        );
        self.edges.insert((u.min(v), u.max(v)))
    }

    /// Whether `{u, v}` has been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edges.contains(&(u.min(v), u.max(v)))
    }

    /// Finalizes into a CSR [`Graph`].
    pub fn build(self) -> Graph {
        let edges: Vec<Edge> = self.edges.into_iter().collect();
        Graph::from_edges(self.n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_adds_are_idempotent() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge(0, 1));
        assert!(!b.add_edge(1, 0));
        assert_eq!(b.m(), 1);
        let g = b.build();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn has_edge_is_orientation_free() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 1);
        assert!(b.has_edge(1, 2));
        assert!(!b.has_edge(0, 1));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        GraphBuilder::new(2).add_edge(0, 0);
    }

    #[test]
    fn build_preserves_counts() {
        let mut b = GraphBuilder::new(5);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 10);
    }
}
