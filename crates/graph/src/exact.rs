//! Centralized reference algorithms.
//!
//! The distributed FSSGA protocols are validated against these classical
//! implementations: BFS distances against the §4.3 protocol, Tarjan bridges
//! against the §2.1 random-walk detector, bipartiteness against the §4.1
//! 2-colouring, and so on. Everything here is deliberately simple,
//! allocation-conscious, and iterative (no recursion — the experiment graphs
//! include paths with 10^5 nodes, which would overflow a DFS stack).

use std::collections::VecDeque;

use crate::{Edge, Graph, NodeId};

/// Distance (in hops) not reachable marker.
pub const UNREACHABLE: u32 = u32::MAX;

/// Multi-source BFS distances. `dist[v]` is the hop distance from `v` to
/// the nearest source, or [`UNREACHABLE`].
pub fn bfs_distances(g: &Graph, sources: &[NodeId]) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::with_capacity(sources.len());
    for &s in sources {
        if dist[s as usize] == UNREACHABLE {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &w in g.neighbors(v) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Connected components: returns `(count, comp)` where `comp[v]` is the
/// 0-based component index of `v`.
pub fn connected_components(g: &Graph) -> (usize, Vec<u32>) {
    let mut comp = vec![u32::MAX; g.n()];
    let mut count = 0u32;
    let mut stack = Vec::new();
    for s in g.nodes() {
        if comp[s as usize] != u32::MAX {
            continue;
        }
        comp[s as usize] = count;
        stack.push(s);
        while let Some(v) = stack.pop() {
            for &w in g.neighbors(v) {
                if comp[w as usize] == u32::MAX {
                    comp[w as usize] = count;
                    stack.push(w);
                }
            }
        }
        count += 1;
    }
    (count as usize, comp)
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    g.n() == 0 || connected_components(g).0 == 1
}

/// Proper 2-colouring if one exists (graph bipartite), else `None`.
/// Works per component; colours are 0/1.
pub fn bipartition(g: &Graph) -> Option<Vec<u8>> {
    let mut colour = vec![u8::MAX; g.n()];
    let mut queue = VecDeque::new();
    for s in g.nodes() {
        if colour[s as usize] != u8::MAX {
            continue;
        }
        colour[s as usize] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            let cv = colour[v as usize];
            for &w in g.neighbors(v) {
                if colour[w as usize] == u8::MAX {
                    colour[w as usize] = 1 - cv;
                    queue.push_back(w);
                } else if colour[w as usize] == cv {
                    return None;
                }
            }
        }
    }
    Some(colour)
}

/// All bridges, via an iterative Tarjan low-link DFS. Output edges are
/// normalized `(min, max)` and sorted.
pub fn bridges(g: &Graph) -> Vec<Edge> {
    let n = g.n();
    let mut disc = vec![0u32; n]; // 0 = unvisited; otherwise discovery time + 1
    let mut low = vec![0u32; n];
    let mut out = Vec::new();
    let mut timer = 1u32;
    // Explicit DFS stack: (node, parent, next-neighbour-index, skipped-one-parent-edge)
    let mut stack: Vec<(NodeId, NodeId, usize, bool)> = Vec::new();
    for root in g.nodes() {
        if disc[root as usize] != 0 {
            continue;
        }
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;
        stack.push((root, root, 0, true));
        while let Some(&mut (v, parent, ref mut idx, ref mut parent_skipped)) = stack.last_mut() {
            let nbrs = g.neighbors(v);
            if *idx < nbrs.len() {
                let w = nbrs[*idx];
                *idx += 1;
                if w == parent && !*parent_skipped {
                    // Skip exactly one copy of the tree edge back to the
                    // parent; parallel edges would be handled here, but the
                    // Graph type forbids them anyway.
                    *parent_skipped = true;
                    continue;
                }
                if disc[w as usize] == 0 {
                    disc[w as usize] = timer;
                    low[w as usize] = timer;
                    timer += 1;
                    stack.push((w, v, 0, false));
                } else {
                    low[v as usize] = low[v as usize].min(disc[w as usize]);
                }
            } else {
                stack.pop();
                if let Some(&mut (p, _, _, _)) = stack.last_mut() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                    if low[v as usize] > disc[p as usize] {
                        out.push((p.min(v), p.max(v)));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// All articulation points (cut vertices), iterative Tarjan. Sorted.
pub fn articulation_points(g: &Graph) -> Vec<NodeId> {
    let n = g.n();
    let mut disc = vec![0u32; n];
    let mut low = vec![0u32; n];
    let mut is_art = vec![false; n];
    let mut timer = 1u32;
    let mut stack: Vec<(NodeId, NodeId, usize, bool)> = Vec::new();
    for root in g.nodes() {
        if disc[root as usize] != 0 {
            continue;
        }
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;
        stack.push((root, root, 0, true));
        let mut root_children = 0usize;
        while let Some(&mut (v, parent, ref mut idx, ref mut parent_skipped)) = stack.last_mut() {
            let nbrs = g.neighbors(v);
            if *idx < nbrs.len() {
                let w = nbrs[*idx];
                *idx += 1;
                if w == parent && !*parent_skipped {
                    *parent_skipped = true;
                    continue;
                }
                if disc[w as usize] == 0 {
                    if v == root {
                        root_children += 1;
                    }
                    disc[w as usize] = timer;
                    low[w as usize] = timer;
                    timer += 1;
                    stack.push((w, v, 0, false));
                } else {
                    low[v as usize] = low[v as usize].min(disc[w as usize]);
                }
            } else {
                stack.pop();
                if let Some(&mut (p, _, _, _)) = stack.last_mut() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                    if p != root && low[v as usize] >= disc[p as usize] {
                        is_art[p as usize] = true;
                    }
                }
            }
        }
        if root_children >= 2 {
            is_art[root as usize] = true;
        }
    }
    (0..n as NodeId).filter(|&v| is_art[v as usize]).collect()
}

/// Eccentricity of `v` (max BFS distance), or `None` if the graph is
/// disconnected from `v`'s perspective.
pub fn eccentricity(g: &Graph, v: NodeId) -> Option<u32> {
    let dist = bfs_distances(g, &[v]);
    let mut ecc = 0;
    for &d in &dist {
        if d == UNREACHABLE {
            return None;
        }
        ecc = ecc.max(d);
    }
    Some(ecc)
}

/// Exact diameter via BFS from every node (O(nm)); `None` if disconnected.
/// Fine for experiment-sized graphs; not intended for n in the millions.
pub fn diameter(g: &Graph) -> Option<u32> {
    if g.n() == 0 {
        return Some(0);
    }
    let mut best = 0;
    for v in g.nodes() {
        best = best.max(eccentricity(g, v)?);
    }
    Some(best)
}

/// A BFS spanning tree rooted at `root`: `parent[v]` is the BFS parent
/// (`parent[root] = root`), or `UNREACHABLE` for unreachable nodes.
pub fn bfs_tree(g: &Graph, root: NodeId) -> Vec<u32> {
    let mut parent = vec![UNREACHABLE; g.n()];
    parent[root as usize] = root;
    let mut queue = VecDeque::new();
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        for &w in g.neighbors(v) {
            if parent[w as usize] == UNREACHABLE {
                parent[w as usize] = v;
                queue.push_back(w);
            }
        }
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn bfs_single_source_on_path() {
        let g = path(5);
        assert_eq!(bfs_distances(&g, &[0]), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, &[2]), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_multi_source() {
        let g = path(7);
        assert_eq!(bfs_distances(&g, &[0, 6]), vec![0, 1, 2, 3, 2, 1, 0]);
    }

    #[test]
    fn bfs_repeated_sources_ok() {
        let g = path(3);
        assert_eq!(bfs_distances(&g, &[0, 0]), vec![0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let d = bfs_distances(&g, &[0]);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn components_counts() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let (k, comp) = connected_components(&g);
        assert_eq!(k, 3);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[5], comp[0]);
    }

    #[test]
    fn connectivity() {
        assert!(is_connected(&cycle(5)));
        assert!(!is_connected(&Graph::from_edges(3, &[(0, 1)])));
        assert!(is_connected(&Graph::from_edges(0, &[])));
        assert!(is_connected(&Graph::from_edges(1, &[])));
    }

    #[test]
    fn bipartition_valid_colouring() {
        let g = grid(4, 5);
        let c = bipartition(&g).expect("grids are bipartite");
        for (u, v) in g.edges() {
            assert_ne!(c[u as usize], c[v as usize]);
        }
    }

    #[test]
    fn bipartition_rejects_odd_cycles() {
        assert!(bipartition(&cycle(9)).is_none());
        assert!(bipartition(&complete(3)).is_none());
        assert!(bipartition(&cycle(10)).is_some());
    }

    #[test]
    fn bridges_on_trees_are_all_edges() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let g = random_tree(50, &mut rng);
        assert_eq!(bridges(&g).len(), 49);
    }

    #[test]
    fn bridges_absent_in_2_edge_connected() {
        assert!(bridges(&cycle(10)).is_empty());
        assert!(bridges(&complete(5)).is_empty());
        assert!(bridges(&torus(4, 4)).is_empty());
    }

    #[test]
    fn bridges_mixed_case() {
        // Two triangles joined by a single edge: that edge is the only bridge.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        assert_eq!(bridges(&g), vec![(2, 3)]);
    }

    #[test]
    fn bridges_match_bruteforce_on_random_graphs() {
        let mut rng = Xoshiro256::seed_from_u64(77);
        for trial in 0..20 {
            let g = connected_gnp(24, 0.08, &mut rng);
            let fast = bridges(&g);
            // Brute force: an edge is a bridge iff removing it disconnects.
            let mut slow = Vec::new();
            let all: Vec<Edge> = g.edges().collect();
            for &(u, v) in &all {
                let rest: Vec<Edge> = all.iter().copied().filter(|&e| e != (u, v)).collect();
                let h = Graph::from_edges(g.n(), &rest);
                let (k, _) = connected_components(&h);
                if k > 1 {
                    slow.push((u, v));
                }
            }
            slow.sort_unstable();
            assert_eq!(fast, slow, "trial {trial}");
        }
    }

    #[test]
    fn articulation_points_match_bruteforce() {
        let mut rng = Xoshiro256::seed_from_u64(88);
        for trial in 0..20 {
            let g = connected_gnp(20, 0.1, &mut rng);
            let fast = articulation_points(&g);
            let mut slow = Vec::new();
            for v in g.nodes() {
                // Remove v: does the rest disconnect?
                let rest: Vec<Edge> = g.edges().filter(|&(a, b)| a != v && b != v).collect();
                let h = Graph::from_edges(g.n(), &rest);
                let (_, comp) = connected_components(&h);
                let mut classes = std::collections::BTreeSet::new();
                for u in g.nodes() {
                    if u != v {
                        classes.insert(comp[u as usize]);
                    }
                }
                if classes.len() > 1 {
                    slow.push(v);
                }
            }
            assert_eq!(fast, slow, "trial {trial}");
        }
    }

    #[test]
    fn diameter_known_values() {
        assert_eq!(diameter(&path(10)), Some(9));
        assert_eq!(diameter(&cycle(10)), Some(5));
        assert_eq!(diameter(&complete(7)), Some(1));
        assert_eq!(diameter(&grid(3, 4)), Some(5));
        assert_eq!(diameter(&petersen()), Some(2));
        assert_eq!(diameter(&Graph::from_edges(2, &[])), None);
    }

    #[test]
    fn eccentricity_path_ends() {
        let g = path(9);
        assert_eq!(eccentricity(&g, 0), Some(8));
        assert_eq!(eccentricity(&g, 4), Some(4));
    }

    #[test]
    fn bfs_tree_is_spanning_and_consistent() {
        let g = grid(4, 4);
        let parent = bfs_tree(&g, 0);
        let dist = bfs_distances(&g, &[0]);
        for v in g.nodes() {
            assert_ne!(parent[v as usize], UNREACHABLE);
            if v != 0 {
                let p = parent[v as usize];
                assert!(g.has_edge(v, p));
                assert_eq!(dist[v as usize], dist[p as usize] + 1);
            }
        }
    }
}

/// 2-edge-connected components: the components left after deleting every
/// bridge. Returns `(count, comp)` with `comp[v]` the component index.
/// Two nodes share a component iff they lie on a common cycle (or are
/// equal) — the equivalence the §2.1 bridge-finding walk computes
/// distributively.
pub fn two_edge_connected_components(g: &Graph) -> (usize, Vec<u32>) {
    let bridge_set: std::collections::HashSet<Edge> = bridges(g).into_iter().collect();
    let mut comp = vec![u32::MAX; g.n()];
    let mut count = 0u32;
    let mut stack = Vec::new();
    for s in g.nodes() {
        if comp[s as usize] != u32::MAX {
            continue;
        }
        comp[s as usize] = count;
        stack.push(s);
        while let Some(v) = stack.pop() {
            for &w in g.neighbors(v) {
                let e = (v.min(w), v.max(w));
                if comp[w as usize] == u32::MAX && !bridge_set.contains(&e) {
                    comp[w as usize] = count;
                    stack.push(w);
                }
            }
        }
        count += 1;
    }
    (count as usize, comp)
}

#[cfg(test)]
mod twoecc_tests {
    use super::*;
    use crate::generators::*;

    #[test]
    fn cycles_are_one_component() {
        let (k, comp) = two_edge_connected_components(&cycle(8));
        assert_eq!(k, 1);
        assert!(comp.iter().all(|&c| c == 0));
    }

    #[test]
    fn trees_are_all_singletons() {
        let g = binary_tree(15);
        let (k, _) = two_edge_connected_components(&g);
        assert_eq!(k, 15);
    }

    #[test]
    fn barbell_has_three_components() {
        // Two cliques + the path nodes between them.
        let g = barbell(4, 3);
        let (k, comp) = two_edge_connected_components(&g);
        assert_eq!(k, 2 + 2); // two cliques + two interior path nodes
        assert_eq!(comp[0], comp[1], "left clique is one class");
        assert_ne!(comp[0], comp[g.n() - 1], "cliques are separate classes");
    }

    #[test]
    fn matches_cycle_relation_bruteforce() {
        // u ~ v iff some simple cycle contains both: check against the
        // definition via bridge deletion on random graphs.
        let mut rng = crate::rng::Xoshiro256::seed_from_u64(3);
        for _ in 0..10 {
            let g = connected_gnp(18, 0.12, &mut rng);
            let (_, comp) = two_edge_connected_components(&g);
            let bset: std::collections::HashSet<Edge> = bridges(&g).into_iter().collect();
            // Same component => connected without using bridges.
            for (u, v) in g.edges() {
                let same = comp[u as usize] == comp[v as usize];
                let is_bridge = bset.contains(&(u.min(v), u.max(v)));
                assert_eq!(same, !is_bridge, "edge ({u},{v})");
            }
        }
    }
}
