//! Topology generators for the experiment suite.
//!
//! Each generator documents which experiments use it. Random generators
//! take an explicit [`Xoshiro256`] so results are reproducible; several of
//! them guarantee connectivity, which the FSSGA model assumes ("We assume
//! the network is connected and has more than one node", Section 3.4).

use crate::rng::Xoshiro256;
use crate::{Graph, GraphBuilder, NodeId};

/// Path graph `P_n`: `0 - 1 - ... - n-1`. Diameter n-1; every edge a bridge.
pub fn path(n: usize) -> Graph {
    assert!(n >= 1);
    let edges: Vec<_> = (1..n as NodeId).map(|v| (v - 1, v)).collect();
    Graph::from_edges(n, &edges)
}

/// Cycle graph `C_n` (n >= 3): bridgeless, bipartite iff n even.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs n >= 3");
    let mut edges: Vec<_> = (1..n as NodeId).map(|v| (v - 1, v)).collect();
    edges.push((n as NodeId - 1, 0));
    Graph::from_edges(n, &edges)
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Star `K_{1,n-1}` with centre 0. The degree-stress topology for the
/// random-walk experiment E8 (walker at a node of degree d).
pub fn star(n: usize) -> Graph {
    assert!(n >= 2);
    let edges: Vec<_> = (1..n as NodeId).map(|v| (0, v)).collect();
    Graph::from_edges(n, &edges)
}

/// `rows x cols` grid (4-neighbour lattice). Bipartite; diameter
/// `rows + cols - 2`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1);
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut edges = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges)
}

/// `rows x cols` torus (grid with wraparound). 4-regular when both sides
/// exceed 2; vertex-transitive, so a good "perfectly symmetric" stress case
/// for symmetry-breaking protocols.
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs both sides >= 3");
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(id(r, c), id(r, (c + 1) % cols));
            b.add_edge(id(r, c), id((r + 1) % rows, c));
        }
    }
    b.build()
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` nodes.
pub fn hypercube(d: usize) -> Graph {
    assert!((1..=20).contains(&d));
    let n = 1usize << d;
    let mut edges = Vec::with_capacity(n * d / 2);
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1 << bit);
            if v < w {
                edges.push((v as NodeId, w as NodeId));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Complete binary tree on `n` nodes (heap indexing: children of `v` are
/// `2v+1`, `2v+2`).
pub fn binary_tree(n: usize) -> Graph {
    assert!(n >= 1);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for v in 1..n {
        edges.push((((v - 1) / 2) as NodeId, v as NodeId));
    }
    Graph::from_edges(n, &edges)
}

/// Uniformly random labelled tree on `n` nodes, via a random Prüfer-like
/// attachment: node `v` attaches to a uniform previous node. (Not the
/// uniform-spanning-tree distribution, but produces the long-and-stringy to
/// broom-shaped variety the experiments need.)
pub fn random_tree(n: usize, rng: &mut Xoshiro256) -> Graph {
    assert!(n >= 1);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for v in 1..n {
        let parent = rng.gen_index(v) as NodeId;
        edges.push((parent, v as NodeId));
    }
    Graph::from_edges(n, &edges)
}

/// Erdős–Rényi `G(n, p)`. May be disconnected.
pub fn gnp(n: usize, p: f64, rng: &mut Xoshiro256) -> Graph {
    let mut b = GraphBuilder::new(n);
    if p >= 1.0 {
        return complete(n);
    }
    if p > 0.0 {
        // Geometric skipping (Batagelj-Brandes): O(n + m) instead of O(n^2).
        let log1mp = (1.0 - p).ln();
        let mut v: i64 = 1;
        let mut w: i64 = -1;
        let n = n as i64;
        while v < n {
            let r = rng.gen_f64().max(f64::MIN_POSITIVE);
            w += 1 + (r.ln() / log1mp).floor() as i64;
            while w >= v && v < n {
                w -= v;
                v += 1;
            }
            if v < n {
                b.add_edge(v as NodeId, w as NodeId);
            }
        }
    }
    b.build()
}

/// Connected `G(n, p)`: a `G(n, p)` sample unioned with a uniform random
/// attachment tree, guaranteeing connectivity while keeping the G(n,p)
/// degree character for `p` above the connectivity threshold.
pub fn connected_gnp(n: usize, p: f64, rng: &mut Xoshiro256) -> Graph {
    assert!(n >= 1);
    let base = gnp(n, p, rng);
    let mut b = GraphBuilder::new(n);
    for (u, v) in base.edges() {
        b.add_edge(u, v);
    }
    for v in 1..n {
        let parent = rng.gen_index(v) as NodeId;
        if parent != v as NodeId {
            b.add_edge(parent, v as NodeId);
        }
    }
    b.build()
}

/// Power-law (scale-free) graph via preferential attachment
/// (Barabási–Albert): nodes `0..=m` start as a clique, then each new node
/// attaches `m` edges to distinct existing nodes chosen with probability
/// proportional to their current degree. Connected by construction, with
/// a heavy-tailed degree distribution — the adversarial workload for
/// degree-aware partitioning (a handful of hubs carry most of the edge
/// weight, unlike the regular tori of the engine baseline).
pub fn preferential_attachment(n: usize, m: usize, rng: &mut Xoshiro256) -> Graph {
    assert!(m >= 1, "each new node needs at least one attachment");
    assert!(n > m, "need more nodes than attachments per node");
    let mut b = GraphBuilder::new(n);
    // `endpoints` lists every node once per incident edge, so a uniform
    // draw from it is a degree-proportional draw over nodes.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * m * n);
    for u in 0..=m {
        for v in (u + 1)..=m {
            b.add_edge(u as NodeId, v as NodeId);
            endpoints.push(u as NodeId);
            endpoints.push(v as NodeId);
        }
    }
    for v in (m + 1)..n {
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
        while chosen.len() < m {
            let t = endpoints[rng.gen_index(endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_edge(v as NodeId, t);
            endpoints.push(v as NodeId);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Complete bipartite graph `K_{a,b}`; sides are `0..a` and `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    assert!(a >= 1 && b >= 1);
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a {
        for v in 0..b {
            edges.push((u as NodeId, (a + v) as NodeId));
        }
    }
    Graph::from_edges(a + b, &edges)
}

/// Random connected bipartite graph: sides `0..a` / `a..a+b`, each cross
/// pair kept with probability `p`, plus a connecting zig-zag spine.
/// Always 2-colourable — the positive instances for experiment E5.
pub fn random_bipartite(a: usize, b: usize, p: f64, rng: &mut Xoshiro256) -> Graph {
    assert!(a >= 1 && b >= 1);
    let mut g = GraphBuilder::new(a + b);
    // Spine: 0 - a - 1 - (a+1) - 2 - ... keeps it connected.
    let spine = a.max(b);
    for i in 0..spine {
        let u = (i.min(a - 1)) as NodeId;
        let v = (a + i.min(b - 1)) as NodeId;
        g.add_edge(u, v);
        if i + 1 < spine {
            let u2 = ((i + 1).min(a - 1)) as NodeId;
            if u2 != u {
                g.add_edge(u2, v);
            }
        }
    }
    for u in 0..a {
        for v in 0..b {
            if rng.gen_bool(p) {
                g.add_edge(u as NodeId, (a + v) as NodeId);
            }
        }
    }
    g.build()
}

/// Barbell: two `K_k` cliques joined by a path of `bridge_len` edges. The
/// canonical slow-mixing graph; its path edges are bridges — used by the
/// bridge-finding experiment E2.
pub fn barbell(k: usize, bridge_len: usize) -> Graph {
    assert!(k >= 2 && bridge_len >= 1);
    let n = 2 * k + bridge_len.saturating_sub(1);
    let mut b = GraphBuilder::new(n);
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge(u as NodeId, v as NodeId);
        }
    }
    let right0 = k + bridge_len - 1;
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge((right0 + u) as NodeId, (right0 + v) as NodeId);
        }
    }
    // Path from clique-A node k-1 through k, k+1, ..., to clique-B node right0.
    let mut prev = (k - 1) as NodeId;
    for i in 0..bridge_len {
        let next = (k + i) as NodeId;
        b.add_edge(prev, next.min((right0) as NodeId));
        prev = next;
    }
    b.build()
}

/// Lollipop: a `K_k` clique with a path of `tail` extra nodes hanging off.
/// Maximizes hitting time (Θ(n^3)) — stress case for walk-based protocols.
pub fn lollipop(k: usize, tail: usize) -> Graph {
    assert!(k >= 2);
    let n = k + tail;
    let mut b = GraphBuilder::new(n);
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge(u as NodeId, v as NodeId);
        }
    }
    for i in 0..tail {
        b.add_edge((k + i - 1).max(k - 1) as NodeId, (k + i) as NodeId);
    }
    b.build()
}

/// Wheel `W_n`: a cycle on `n-1` nodes plus a hub adjacent to all of them.
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4);
    let mut b = GraphBuilder::new(n);
    let rim = n - 1;
    for i in 0..rim {
        b.add_edge(i as NodeId, ((i + 1) % rim) as NodeId);
        b.add_edge(i as NodeId, rim as NodeId);
    }
    b.build()
}

/// The Petersen graph: 3-regular, girth 5, bridgeless, non-bipartite.
pub fn petersen() -> Graph {
    let mut edges = Vec::new();
    for i in 0..5u32 {
        edges.push((i, (i + 1) % 5)); // outer C5
        edges.push((5 + i, 5 + (i + 2) % 5)); // inner pentagram
        edges.push((i, 5 + i)); // spokes
    }
    Graph::from_edges(10, &edges)
}

/// Cycle `C_n` with `chords` uniformly random extra chords (connected,
/// mostly bridgeless). Workload for the bridge-detection experiment: with
/// chords the cycle has no bridges, so every edge counter should blow past
/// ±1 eventually.
pub fn cycle_with_chords(n: usize, chords: usize, rng: &mut Xoshiro256) -> Graph {
    assert!(n >= 4);
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v as NodeId, ((v + 1) % n) as NodeId);
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < chords && attempts < chords * 50 + 100 {
        attempts += 1;
        let u = rng.gen_index(n) as NodeId;
        let v = rng.gen_index(n) as NodeId;
        if u != v && !b.has_edge(u, v) && b.add_edge(u, v) {
            added += 1;
        }
    }
    b.build()
}

/// Caterpillar: a spine path of `spine` nodes, each with `legs` pendant
/// leaves. Every edge is a bridge — the all-bridges workload for E2.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 1);
    let n = spine * (1 + legs);
    let mut edges = Vec::new();
    for s in 1..spine {
        edges.push(((s - 1) as NodeId, s as NodeId));
    }
    let mut next = spine;
    for s in 0..spine {
        for _ in 0..legs {
            edges.push((s as NodeId, next as NodeId));
            next += 1;
        }
    }
    Graph::from_edges(n, &edges)
}

/// Two cliques sharing a single cut vertex ("bowtie" for k=3). The shared
/// vertex is an articulation point but no edge is a bridge.
pub fn two_cliques_shared_vertex(k: usize) -> Graph {
    assert!(k >= 3);
    let n = 2 * k - 1;
    let mut b = GraphBuilder::new(n);
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge(u as NodeId, v as NodeId);
        }
    }
    // Second clique on {k-1, k, ..., 2k-2}: shares node k-1.
    for u in (k - 1)..n {
        for v in (u + 1)..n {
            b.add_edge(u as NodeId, v as NodeId);
        }
    }
    b.build()
}

/// Every connected simple graph on `n` labelled vertices (`1 <= n <= 5`),
/// enumerated by edge-subset bitmask in a fixed, deterministic order.
///
/// The bounded model checker (`fssga-verify`) quantifies over this family
/// when a named-graph family is not exhaustive enough; tests use it to
/// cross-check structural invariants on *all* small topologies. Counts are
/// the OEIS A001187 labelled connected graphs: 1, 1, 4, 38, 728 for
/// n = 1..=5 — the n ≤ 5 cap keeps the enumeration (2^10 masks at n = 5)
/// trivially cheap while the n = 6 count (26704) would already dominate
/// any checker built on top.
pub fn all_connected_graphs(n: usize) -> Vec<Graph> {
    assert!(
        (1..=5).contains(&n),
        "all_connected_graphs supports 1 <= n <= 5, got {n}"
    );
    // All unordered vertex pairs, in lexicographic order: bit i of a mask
    // decides whether pairs[i] is an edge.
    let pairs: Vec<(NodeId, NodeId)> = (0..n as NodeId)
        .flat_map(|u| ((u + 1)..n as NodeId).map(move |v| (u, v)))
        .collect();
    let mut out = Vec::new();
    for mask in 0u32..(1u32 << pairs.len()) {
        let edges: Vec<(NodeId, NodeId)> = pairs
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) != 0)
            .map(|(_, &e)| e)
            .collect();
        let g = Graph::from_edges(n, &edges);
        if crate::exact::is_connected(&g) {
            out.push(g);
        }
    }
    out
}

/// An odd cycle glued onto a random bipartite graph — guaranteed
/// non-2-colourable instances for experiment E5.
pub fn bipartite_plus_odd_cycle(a: usize, b: usize, p: f64, rng: &mut Xoshiro256) -> Graph {
    let base = random_bipartite(a, b, p, rng);
    let mut g = GraphBuilder::new(base.n());
    for (u, v) in base.edges() {
        g.add_edge(u, v);
    }
    // Close a triangle on two side-A nodes and one side-B node:
    // side-A nodes are never adjacent in the bipartite base.
    if a >= 2 {
        g.add_edge(0, 1);
        g.add_edge(0, a as NodeId);
        g.add_edge(1, a as NodeId);
    }
    g.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;

    fn rng() -> Xoshiro256 {
        Xoshiro256::seed_from_u64(0xF55A)
    }

    #[test]
    fn all_connected_graphs_counts_match_oeis_a001187() {
        for (n, expect) in [(1usize, 1usize), (2, 1), (3, 4), (4, 38), (5, 728)] {
            let family = all_connected_graphs(n);
            assert_eq!(family.len(), expect, "n = {n}");
            for g in &family {
                assert_eq!(g.n(), n);
                assert!(exact::is_connected(g));
            }
        }
    }

    #[test]
    fn all_connected_graphs_is_deterministic_and_duplicate_free() {
        let a = all_connected_graphs(4);
        let b = all_connected_graphs(4);
        let edge_sets = |fam: &[Graph]| -> Vec<Vec<(NodeId, NodeId)>> {
            fam.iter().map(|g| g.edges().collect()).collect()
        };
        let (ea, eb) = (edge_sets(&a), edge_sets(&b));
        assert_eq!(ea, eb, "enumeration order must be stable");
        let mut dedup = ea.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ea.len(), "no duplicate edge sets");
    }

    #[test]
    #[should_panic(expected = "1 <= n <= 5")]
    fn all_connected_graphs_rejects_large_n() {
        let _ = all_connected_graphs(6);
    }

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!((g.n(), g.m()), (5, 4));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(exact::is_connected(&g));
        assert_eq!(exact::bridges(&g).len(), 4);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!((g.n(), g.m()), (6, 6));
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert!(exact::bridges(&g).is_empty());
        assert!(exact::bipartition(&g).is_some());
        assert!(exact::bipartition(&cycle(7)).is_none());
    }

    #[test]
    fn complete_shape() {
        let g = complete(6);
        assert_eq!(g.m(), 15);
        assert!(g.nodes().all(|v| g.degree(v) == 5));
    }

    #[test]
    fn star_shape() {
        let g = star(10);
        assert_eq!(g.degree(0), 9);
        assert!((1..10).all(|v| g.degree(v) == 1));
        assert_eq!(exact::bridges(&g).len(), 9);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // 17
        assert!(exact::is_connected(&g));
        assert!(exact::bipartition(&g).is_some());
        let d = exact::bfs_distances(&g, &[0]);
        assert_eq!(d[11], 5); // (0,0) -> (2,3): 2+3
    }

    #[test]
    fn preferential_attachment_is_connected_and_heavy_tailed() {
        let mut r = rng();
        let g = preferential_attachment(2000, 2, &mut r);
        assert_eq!(g.n(), 2000);
        assert!(exact::is_connected(&g));
        assert!(g.min_degree() >= 2, "every node attaches m = 2 edges");
        // Heavy tail: the max degree dwarfs the mean (~2m = 4).
        assert!(
            g.max_degree() > 10 * (2 * g.m() / g.n()),
            "expected hubs, max degree {}",
            g.max_degree()
        );
        // Determinism: same seed, same graph.
        let again = preferential_attachment(2000, 2, &mut rng());
        assert_eq!(g, again);
    }

    #[test]
    fn torus_is_regular() {
        let g = torus(4, 5);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert!(exact::is_connected(&g));
        assert!(exact::bridges(&g).is_empty());
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(exact::diameter(&g), Some(4));
        assert!(exact::bipartition(&g).is_some());
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(15);
        assert_eq!(g.m(), 14);
        assert!(exact::is_connected(&g));
        assert_eq!(exact::bridges(&g).len(), 14, "every tree edge is a bridge");
    }

    #[test]
    fn random_tree_is_a_tree() {
        let mut r = rng();
        for n in [1usize, 2, 10, 100] {
            let g = random_tree(n, &mut r);
            assert_eq!(g.m(), n - 1);
            assert!(exact::is_connected(&g));
        }
    }

    #[test]
    fn gnp_extremes() {
        let mut r = rng();
        assert_eq!(gnp(10, 0.0, &mut r).m(), 0);
        assert_eq!(gnp(10, 1.0, &mut r).m(), 45);
    }

    #[test]
    fn gnp_density_close_to_p() {
        let mut r = rng();
        let n = 200;
        let g = gnp(n, 0.1, &mut r);
        let expected = 0.1 * (n * (n - 1) / 2) as f64;
        let got = g.m() as f64;
        assert!(
            (got - expected).abs() < 0.15 * expected,
            "m = {got}, expected ~{expected}"
        );
    }

    #[test]
    fn connected_gnp_is_connected() {
        let mut r = rng();
        for &p in &[0.0, 0.01, 0.1] {
            let g = connected_gnp(100, p, &mut r);
            assert!(exact::is_connected(&g), "p = {p}");
        }
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.m(), 12);
        assert!(exact::bipartition(&g).is_some());
    }

    #[test]
    fn random_bipartite_is_bipartite_and_connected() {
        let mut r = rng();
        for _ in 0..10 {
            let g = random_bipartite(8, 12, 0.2, &mut r);
            assert!(exact::is_connected(&g));
            assert!(exact::bipartition(&g).is_some());
        }
    }

    #[test]
    fn bipartite_plus_odd_cycle_is_odd() {
        let mut r = rng();
        let g = bipartite_plus_odd_cycle(8, 12, 0.2, &mut r);
        assert!(exact::is_connected(&g));
        assert!(exact::bipartition(&g).is_none());
    }

    #[test]
    fn barbell_bridges_are_the_path() {
        let g = barbell(5, 3);
        assert!(exact::is_connected(&g));
        let bridges = exact::bridges(&g);
        assert_eq!(
            bridges.len(),
            3,
            "the 3 path edges are bridges: {bridges:?}"
        );
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(5, 4);
        assert_eq!(g.n(), 9);
        assert!(exact::is_connected(&g));
        assert_eq!(exact::bridges(&g).len(), 4);
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(7);
        assert_eq!(g.degree(6), 6);
        assert!(exact::bridges(&g).is_empty());
        assert!(exact::bipartition(&g).is_none(), "wheels contain triangles");
    }

    #[test]
    fn petersen_shape() {
        let g = petersen();
        assert_eq!((g.n(), g.m()), (10, 15));
        assert!(g.nodes().all(|v| g.degree(v) == 3));
        assert_eq!(exact::diameter(&g), Some(2));
        assert!(exact::bridges(&g).is_empty());
    }

    #[test]
    fn cycle_with_chords_has_no_bridges() {
        let mut r = rng();
        let g = cycle_with_chords(30, 5, &mut r);
        assert_eq!(g.m(), 35);
        assert!(exact::bridges(&g).is_empty());
    }

    #[test]
    fn caterpillar_all_bridges() {
        let g = caterpillar(5, 3);
        assert_eq!(g.n(), 20);
        assert_eq!(exact::bridges(&g).len(), g.m());
    }

    #[test]
    fn shared_vertex_cliques_no_bridges_one_cut_vertex() {
        let g = two_cliques_shared_vertex(4);
        assert_eq!(g.n(), 7);
        assert!(exact::bridges(&g).is_empty());
        assert_eq!(exact::articulation_points(&g), vec![3]);
    }
}

/// Approximately `d`-regular random graph on `n` nodes via `d` rounds of
/// random perfect matchings (`n` even; duplicate/self pairs are skipped,
/// so a few nodes may fall short of degree `d`). Retries until connected.
/// Good low-diameter expander-ish workloads for diffusion experiments.
pub fn random_near_regular(n: usize, d: usize, rng: &mut Xoshiro256) -> Graph {
    assert!(n >= 4 && n.is_multiple_of(2) && d >= 2);
    for _attempt in 0..200 {
        let mut b = GraphBuilder::new(n);
        for _ in 0..d {
            let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
            rng.shuffle(&mut perm);
            for pair in perm.chunks(2) {
                if pair[0] != pair[1] && !b.has_edge(pair[0], pair[1]) {
                    b.add_edge(pair[0], pair[1]);
                }
            }
        }
        let g = b.build();
        if crate::exact::is_connected(&g) {
            return g;
        }
    }
    panic!("random_near_regular failed to produce a connected graph");
}

#[cfg(test)]
mod near_regular_tests {
    use super::*;
    use crate::exact;

    #[test]
    fn near_regular_shape() {
        let mut rng = Xoshiro256::seed_from_u64(99);
        let g = random_near_regular(64, 4, &mut rng);
        assert!(exact::is_connected(&g));
        // Degrees concentrate near d.
        let avg = 2.0 * g.m() as f64 / g.n() as f64;
        assert!((3.0..=4.0).contains(&avg), "avg degree {avg}");
        assert!(g.max_degree() <= 4);
        // Expander-ish: diameter is logarithmic, far below n.
        assert!(exact::diameter(&g).unwrap() <= 10);
    }
}
