//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component of the workspace (graph generators, schedulers,
//! the probabilistic FSSGA coins of Definition 3.11) draws from this module,
//! so a `(seed, parameters)` pair fully determines an experiment. We use
//! xoshiro256\*\* (Blackman & Vigna) seeded through splitmix64 — the standard
//! recommendation for seeding xoshiro — rather than an external crate, to
//! keep the simulation core dependency-free and bit-stable across releases.

/// The splitmix64 generator. Used to expand a 64-bit seed into xoshiro
/// state, and handy on its own for cheap stream splitting.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* — a fast, high-quality 256-bit-state generator.
///
/// All randomized code in the workspace takes `&mut Xoshiro256` explicitly;
/// nothing reads ambient entropy, which keeps every test and experiment
/// reproducible from its seed.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose 256-bit state is expanded from `seed` via
    /// splitmix64 (the seeding procedure recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method: unbiased and branch-
    /// light, which matters because the engine draws one coin per node
    /// activation.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "gen_range bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// A uniformly random `f64` in `[0, 1)`, using the top 53 bits.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fair coin.
    #[inline]
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Derives an independent child generator. Used to give every node (or
    /// every trial) its own stream so that adding instrumentation that
    /// consumes randomness in one place cannot perturb another.
    pub fn fork(&mut self) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(self.next_u64())
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose from empty slice");
        &xs[self.gen_index(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c reference implementation.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should occur");
    }

    #[test]
    fn gen_range_bound_one_is_always_zero() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(rng.gen_range(1), 0);
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(99);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.25).abs() < 0.01, "freq = {freq}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent_of_parent_consumption() {
        let mut parent = Xoshiro256::seed_from_u64(3);
        let mut child = parent.fork();
        let c1 = child.next_u64();
        // Re-derive: same parent seed, same fork point -> same child stream.
        let mut parent2 = Xoshiro256::seed_from_u64(3);
        let mut child2 = parent2.fork();
        assert_eq!(child2.next_u64(), c1);
    }

    #[test]
    fn choose_picks_existing_elements() {
        let mut rng = Xoshiro256::seed_from_u64(8);
        let xs = [10, 20, 30];
        for _ in 0..50 {
            assert!(xs.contains(rng.choose(&xs)));
        }
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut rng = Xoshiro256::seed_from_u64(123);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }
}
