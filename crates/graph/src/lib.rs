//! Graph substrate for the `fssga` workspace.
//!
//! The paper ("Symmetric Network Computation", Pritchard & Vempala, SPAA
//! 2006) assumes an undirected, connected network of anonymous nodes. This
//! crate supplies everything the model and its experiments need from the
//! graph side:
//!
//! * [`Graph`] — an immutable, cache-friendly CSR representation used for
//!   fault-free runs and as the snapshot type everywhere else.
//! * [`DynGraph`] — a mutable adjacency structure supporting the paper's
//!   *decreasing benign faults* (edge and node deletion) and, since the
//!   streaming-churn work, arrivals too: nodes append at fresh ids and
//!   edges insert into sorted adjacency in O(log deg + deg).
//! * [`generators`] — the topology families used by the experiments (paths,
//!   cycles, grids, tori, hypercubes, random graphs, trees, barbells, ...).
//! * [`exact`] — classical centralized reference algorithms (BFS, bridges
//!   via Tarjan, components, bipartiteness, diameter) that serve as oracles
//!   when validating the distributed FSSGA protocols.
//! * [`partition`] — degree-aware contiguous node partitioning for the
//!   engine's sharded synchronous rounds, with imbalance and edge-cut
//!   statistics.
//! * [`rng`] — a small deterministic PRNG (splitmix64-seeded xoshiro256**)
//!   so that every simulation in the workspace is exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod dynamic;
pub mod exact;
pub mod generators;
pub mod partition;
pub mod rng;

mod csr;

pub use builder::GraphBuilder;
pub use csr::Graph;
pub use dynamic::DynGraph;
pub use partition::{CutStats, Partition};
pub use rng::Xoshiro256;

/// Node identifier. Graphs in this workspace are bounded by `u32` on
/// purpose: it halves the memory traffic of adjacency arrays (see the Rust
/// Performance Book's "Smaller Integers" guidance) and no experiment in the
/// paper needs more than a few million nodes.
pub type NodeId = u32;

/// An undirected edge, stored with `min(u,v) <= max(u,v)`.
pub type Edge = (NodeId, NodeId);
