//! Degree-aware node partitioning for sharded execution.
//!
//! The engine's sharded synchronous round (see `fssga-engine`) assigns
//! each shard one *contiguous* range of node ids. Contiguity is a
//! deliberate invariant, not a simplification:
//!
//! * CSR adjacency rows of a shard stay contiguous in memory, so a
//!   shard's evaluation pass is the same forward scan the sequential
//!   kernel does — no gather lists, no index translation.
//! * Concatenating per-shard results *in shard order* equals node order,
//!   which is exactly the canonical order the sequential kernel commits
//!   in. Bit-identity across thread counts then needs no sorting step.
//! * The shard of a node is a single array lookup (or a binary search
//!   over `shards + 1` boundaries), cheap enough for the per-change
//!   dirty-marking hot path.
//!
//! Within that constraint the partitioner balances *work*, not node
//! counts: evaluating a node costs one neighbour scan plus a constant, so
//! node `v` is weighted `degree(v) + 1` and boundaries are placed by
//! prefix sums so every shard carries ≈ `total / shards` weight. On
//! skewed (power-law) graphs this is the difference between one shard
//! owning all the hubs and an even spread; [`Partition::imbalance`] and
//! [`CutStats`] make the residual skew observable.

use crate::csr::Graph;
use crate::NodeId;

/// A contiguous, degree-weighted assignment of node ids to shards.
///
/// Shard `k` owns the id range `starts[k] .. starts[k + 1]`; ranges cover
/// `0..n` without gaps or overlap (empty shards are allowed when
/// `shards > n`). Build one with [`Partition::by_degree`] (from a graph)
/// or [`Partition::from_degrees`] (from any degree slice — the engine
/// uses its fault-adjusted CSR row lengths).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// `shards + 1` boundaries; shard `k` is `starts[k]..starts[k+1]`.
    starts: Vec<u32>,
    /// Per-shard total weight (`degree + 1` summed over the range).
    weights: Vec<u64>,
}

/// Edge-cut statistics of a [`Partition`] on a concrete graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CutStats {
    /// Edges whose endpoints live in different shards.
    pub cut: usize,
    /// Total edges in the graph.
    pub total: usize,
}

impl CutStats {
    /// Fraction of edges crossing a shard boundary (0.0 for an edgeless
    /// graph).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.cut as f64 / self.total as f64
        }
    }
}

impl Partition {
    /// Partitions `0..degrees.len()` into `shards` contiguous ranges of
    /// near-equal total weight, where node `v` weighs `degrees[v] + 1`.
    ///
    /// Boundary `k` is placed at the first node where the weight prefix
    /// sum reaches `k/shards` of the total, so every shard's weight is
    /// within one node's weight of the ideal `total / shards`.
    ///
    /// Panics if `shards == 0`.
    pub fn from_degrees(degrees: &[u32], shards: usize) -> Self {
        assert!(shards > 0, "a partition needs at least one shard");
        let n = degrees.len();
        let total: u64 = degrees.iter().map(|&d| d as u64 + 1).sum();
        let mut starts = vec![n as u32; shards + 1];
        starts[0] = 0;
        let mut boundary = 1usize;
        let mut acc = 0u64;
        for (v, &d) in degrees.iter().enumerate() {
            acc += d as u64 + 1;
            while boundary < shards && acc * shards as u64 >= total * boundary as u64 {
                starts[boundary] = (v + 1) as u32;
                boundary += 1;
            }
        }
        let weights = (0..shards)
            .map(|k| {
                degrees[starts[k] as usize..starts[k + 1] as usize]
                    .iter()
                    .map(|&d| d as u64 + 1)
                    .sum()
            })
            .collect();
        Self { starts, weights }
    }

    /// Partitions the nodes of `g` (see [`Self::from_degrees`]).
    pub fn by_degree(g: &Graph, shards: usize) -> Self {
        let degrees: Vec<u32> = g.nodes().map(|v| g.degree(v) as u32).collect();
        Self::from_degrees(&degrees, shards)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.weights.len()
    }

    /// Number of nodes partitioned.
    pub fn n(&self) -> usize {
        *self.starts.last().expect("starts is never empty") as usize
    }

    /// The node-id range owned by shard `k`.
    pub fn range(&self, k: usize) -> std::ops::Range<NodeId> {
        self.starts[k]..self.starts[k + 1]
    }

    /// The shard owning node `v` (binary search over the boundaries).
    pub fn shard_of(&self, v: NodeId) -> usize {
        debug_assert!((v as usize) < self.n());
        // partition_point: number of boundaries <= v, minus the leading 0.
        self.starts.partition_point(|&s| s <= v) - 1
    }

    /// The dense node → shard map (what the engine's hot path uses
    /// instead of [`Self::shard_of`] lookups).
    pub fn assignments(&self) -> Vec<u32> {
        let mut shard_of = vec![0u32; self.n()];
        for k in 0..self.shards() {
            let r = self.range(k);
            shard_of[r.start as usize..r.end as usize].fill(k as u32);
        }
        shard_of
    }

    /// Total weight (`degree + 1` summed) of shard `k`.
    pub fn weight(&self, k: usize) -> u64 {
        self.weights[k]
    }

    /// Max-over-mean weight ratio: 1.0 is a perfect balance; `shards` is
    /// the worst case (one shard owns everything). Empty partitions
    /// report 1.0.
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.weights.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.shards() as f64;
        let max = *self.weights.iter().max().expect("at least one shard") as f64;
        max / mean
    }

    /// Counts the edges of `g` crossing shard boundaries. `g` must have
    /// the same node count the partition was built for.
    pub fn cut_stats(&self, g: &Graph) -> CutStats {
        assert_eq!(g.n(), self.n(), "partition/graph node count mismatch");
        let cut = g
            .edges()
            .filter(|&(u, v)| self.shard_of(u) != self.shard_of(v))
            .count();
        CutStats { cut, total: g.m() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::rng::Xoshiro256;

    #[test]
    fn ranges_cover_all_nodes_without_overlap() {
        let g = generators::torus(8, 8);
        for shards in [1, 2, 3, 4, 7, 8] {
            let p = Partition::by_degree(&g, shards);
            assert_eq!(p.shards(), shards);
            assert_eq!(p.n(), g.n());
            let mut covered = 0usize;
            for k in 0..shards {
                let r = p.range(k);
                assert_eq!(r.start as usize, covered, "shard {k} must be contiguous");
                covered = r.end as usize;
            }
            assert_eq!(covered, g.n());
        }
    }

    #[test]
    fn shard_of_matches_ranges_and_assignments() {
        let g = generators::grid(5, 9);
        let p = Partition::by_degree(&g, 4);
        let dense = p.assignments();
        for v in g.nodes() {
            let k = p.shard_of(v);
            assert!(p.range(k).contains(&v));
            assert_eq!(dense[v as usize] as usize, k);
        }
    }

    #[test]
    fn regular_graph_splits_evenly() {
        // Torus: every degree 4, so weights must differ by at most one
        // node's weight (5).
        let g = generators::torus(10, 10);
        let p = Partition::by_degree(&g, 4);
        let max = (0..4).map(|k| p.weight(k)).max().unwrap();
        let min = (0..4).map(|k| p.weight(k)).min().unwrap();
        assert!(max - min <= 5, "near-equal split, got spread {}", max - min);
        assert!(p.imbalance() < 1.02);
    }

    #[test]
    fn degree_weighting_balances_skewed_graphs() {
        // Star: the hub (node 0) carries a third of the total weight. A
        // node-count split (500/500) would hand shard 0 the hub *plus*
        // half the leaves — ~2/3 of the work. The degree-aware cut
        // instead gives shard 0 the hub and far fewer leaves, so the
        // weights come out near-equal.
        let g = generators::star(1000);
        let p = Partition::by_degree(&g, 2);
        assert!(
            p.range(0).len() < 300,
            "hub shard takes few leaves, got {}",
            p.range(0).len()
        );
        assert!(p.imbalance() < 1.01, "imbalance {}", p.imbalance());
        // A node-count split of the same graph would be ~4/3 imbalanced.
        let half_weight = (1000 + 2 * 499) as f64;
        let naive_imbalance = half_weight / ((1000 + 2 * 999) as f64 / 2.0);
        assert!(p.imbalance() < naive_imbalance);
    }

    #[test]
    fn more_shards_than_nodes_leaves_empties() {
        let g = generators::path(3);
        let p = Partition::by_degree(&g, 8);
        assert_eq!(p.shards(), 8);
        let covered: usize = (0..8).map(|k| p.range(k).len()).sum();
        assert_eq!(covered, 3);
        for v in g.nodes() {
            let k = p.shard_of(v);
            assert!(p.range(k).contains(&v));
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let g = generators::cycle(12);
        let p = Partition::by_degree(&g, 1);
        assert_eq!(p.range(0), 0..12);
        assert_eq!(p.imbalance(), 1.0);
        assert_eq!(p.cut_stats(&g).cut, 0);
    }

    #[test]
    fn cut_stats_count_boundary_edges() {
        // Path of 10 split in two: exactly the middle edge is cut.
        let g = generators::path(10);
        let p = Partition::by_degree(&g, 2);
        let cs = p.cut_stats(&g);
        assert_eq!(cs.total, 9);
        assert_eq!(cs.cut, 1);
        assert!((cs.fraction() - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn from_degrees_accepts_fault_adjusted_rows() {
        // The engine passes live row lengths, not the original degrees:
        // zeroed rows (dead nodes) still occupy a slot with weight 1.
        let degrees = [4u32, 0, 0, 4, 4, 4];
        let p = Partition::from_degrees(&degrees, 2);
        assert_eq!(p.n(), 6);
        let w0 = p.weight(0);
        let w1 = p.weight(1);
        assert_eq!(w0 + w1, 4 + 1 + 1 + 1 + 5 + 5 + 5);
        assert!(w0.abs_diff(w1) <= 5);
    }

    #[test]
    fn power_law_partition_is_balanced() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let g = generators::preferential_attachment(2000, 3, &mut rng);
        let p = Partition::by_degree(&g, 4);
        assert!(
            p.imbalance() < 1.25,
            "degree weighting keeps hubs spread, got {}",
            p.imbalance()
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        Partition::from_degrees(&[1, 2, 3], 0);
    }
}
