//! Mutable graphs supporting faults *and* churn.
//!
//! The paper's fault model (Section 1) only ever removes structure: "a node
//! or edge may permanently be deleted from the graph because it
//! malfunctions, but nodes and edges never join the network". [`DynGraph`]
//! started as exactly that deletion-only interface; the streaming churn
//! engine extends it with *arrivals* ([`DynGraph::add_node`],
//! [`DynGraph::add_edge`]) so that long-running degradation-and-recovery
//! workloads can grow the network live. Removal-only consumers are
//! unaffected: ids remain stable forever (dead slots are never recycled;
//! new nodes always get fresh ids at the end of the id space).

use crate::{Edge, Graph, NodeId};

/// An undirected graph from which edges and nodes can be removed, and to
/// which new nodes and edges can be added.
///
/// Adjacency is a **sorted** `Vec` per node: membership tests are
/// O(log deg) binary searches, and insertions/removals are O(deg) shifts
/// (cheap in practice — the shift is a `memmove` over `u32`s). Keeping
/// rows sorted means high-degree power-law nodes do not degrade churn
/// application to quadratic scans, and [`Self::snapshot`] can export
/// without re-sorting. Node deletion marks the node dead; dead nodes keep
/// their id (ids are stable for the lifetime of the simulation) but have
/// no neighbours and are skipped by schedulers. Node arrival appends a
/// fresh slot at the end of the id space — dead ids are never revived.
#[derive(Clone, Debug)]
pub struct DynGraph {
    adj: Vec<Vec<NodeId>>,
    alive: Vec<bool>,
    m: usize,
    alive_count: usize,
}

impl DynGraph {
    /// Starts from an immutable snapshot.
    pub fn from_graph(g: &Graph) -> Self {
        // CSR rows are already sorted ascending, so the invariant holds
        // from the start.
        let adj = g.nodes().map(|v| g.neighbors(v).to_vec()).collect();
        Self {
            adj,
            alive: vec![true; g.n()],
            m: g.m(),
            alive_count: g.n(),
        }
    }

    /// Total node slots (alive or dead); ids range over `0..n_slots()`.
    pub fn n_slots(&self) -> usize {
        self.adj.len()
    }

    /// Number of alive nodes.
    pub fn n_alive(&self) -> usize {
        self.alive_count
    }

    /// Number of remaining undirected edges.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Whether node `v` is still alive.
    #[inline]
    pub fn is_alive(&self, v: NodeId) -> bool {
        self.alive[v as usize]
    }

    /// Current neighbours of `v`, sorted ascending. Empty for dead nodes.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v as usize]
    }

    /// Current degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].len()
    }

    /// Whether `{u,v}` is currently an edge. O(log deg(u)).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Iterates alive node ids.
    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n_slots() as NodeId).filter(move |&v| self.alive[v as usize])
    }

    /// Adds a fresh, isolated, alive node and returns its id (always the
    /// previous `n_slots()` — ids grow monotonically; dead slots are never
    /// recycled, so every id ever handed out stays meaningful).
    pub fn add_node(&mut self) -> NodeId {
        let v = self.n_slots() as NodeId;
        self.adj.push(Vec::new());
        self.alive.push(true);
        self.alive_count += 1;
        v
    }

    /// Adds the edge `{u, v}`. Returns `true` if it was added; `false`
    /// (and no mutation) if `u == v`, either endpoint is dead or out of
    /// range, or the edge already exists.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let (ui, vi) = (u as usize, v as usize);
        if u == v || vi >= self.n_slots() || ui >= self.n_slots() {
            return false;
        }
        if !self.alive[ui] || !self.alive[vi] {
            return false;
        }
        let Err(pos_u) = self.adj[ui].binary_search(&v) else {
            return false;
        };
        self.adj[ui].insert(pos_u, v);
        let pos_v = self.adj[vi]
            .binary_search(&u)
            .expect_err("adjacency lists out of sync");
        self.adj[vi].insert(pos_v, u);
        self.m += 1;
        true
    }

    /// Removes the edge `{u, v}`. Returns `true` if it existed.
    /// Out-of-range ids are a no-op (trace-sourced churn events may name
    /// structure that never materialized).
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u as usize >= self.n_slots() || v as usize >= self.n_slots() {
            return false;
        }
        let removed = Self::remove_from(&mut self.adj[u as usize], v);
        if removed {
            let also = Self::remove_from(&mut self.adj[v as usize], u);
            debug_assert!(also, "adjacency lists out of sync");
            self.m -= 1;
        }
        removed
    }

    /// Removes node `v` and all incident edges. Returns `true` if it was
    /// alive. Out-of-range ids are a no-op, like [`Self::remove_edge`].
    pub fn remove_node(&mut self, v: NodeId) -> bool {
        if v as usize >= self.n_slots() || !self.alive[v as usize] {
            return false;
        }
        self.alive[v as usize] = false;
        self.alive_count -= 1;
        let nbrs = std::mem::take(&mut self.adj[v as usize]);
        self.m -= nbrs.len();
        for u in nbrs {
            let removed = Self::remove_from(&mut self.adj[u as usize], v);
            debug_assert!(removed, "adjacency lists out of sync");
        }
        true
    }

    /// Binary-search removal preserving sortedness. O(log deg) to find,
    /// O(deg) to shift.
    fn remove_from(list: &mut Vec<NodeId>, x: NodeId) -> bool {
        match list.binary_search(&x) {
            Ok(i) => {
                list.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// One-pass CSR export of the current topology: `(offsets, targets)`
    /// with `targets[offsets[v] as usize..offsets[v + 1] as usize]` the
    /// current neighbours of `v`, sorted ascending. Dead nodes appear as
    /// empty rows. This is the engine's compiled-kernel fast path: a flat,
    /// cache-friendly mirror of the adjacency with no edge-list
    /// materialization and no sorting.
    pub fn csr_arrays(&self) -> (Vec<u32>, Vec<NodeId>) {
        let n = self.n_slots();
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + self.adj[v].len() as u32;
        }
        let mut targets = Vec::with_capacity(offsets[n] as usize);
        for row in &self.adj {
            targets.extend_from_slice(row);
        }
        (offsets, targets)
    }

    /// Snapshot of the *current* graph as a CSR [`Graph`] over all node
    /// slots (dead nodes appear isolated). Useful for handing the exact
    /// oracles a consistent view mid-fault-campaign. Built via
    /// [`Self::csr_arrays`] directly — rows are maintained sorted, so the
    /// export is O(n + m) with no intermediate edge list and no sort.
    pub fn snapshot(&self) -> Graph {
        let (offsets, targets) = self.csr_arrays();
        Graph::from_sorted_csr(offsets, targets)
    }

    /// Iterates remaining undirected edges, each once with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.n_slots() as NodeId).flat_map(move |u| {
            self.adj[u as usize]
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// The set of alive nodes reachable from `start` in the current graph
    /// (`start` included, if alive).
    pub fn component_of(&self, start: NodeId) -> Vec<NodeId> {
        if !self.is_alive(start) {
            return Vec::new();
        }
        let mut seen = vec![false; self.n_slots()];
        let mut stack = vec![start];
        let mut out = Vec::new();
        seen[start as usize] = true;
        while let Some(v) = stack.pop() {
            out.push(v);
            for &w in self.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Whether the alive part of the graph is connected (vacuously true if
    /// fewer than two alive nodes remain).
    pub fn is_connected(&self) -> bool {
        let mut alive = self.alive_nodes();
        match alive.next() {
            None => true,
            Some(v) => self.component_of(v).len() == self.n_alive(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::rng::Xoshiro256;

    fn assert_sorted(d: &DynGraph) {
        for v in 0..d.n_slots() as NodeId {
            assert!(
                d.neighbors(v).windows(2).all(|w| w[0] < w[1]),
                "row {v} not strictly sorted: {:?}",
                d.neighbors(v)
            );
        }
    }

    #[test]
    fn starts_equal_to_source() {
        let g = generators::cycle(5);
        let d = DynGraph::from_graph(&g);
        assert_eq!(d.n_alive(), 5);
        assert_eq!(d.m(), 5);
        assert!(d.is_connected());
        assert_sorted(&d);
        for v in g.nodes() {
            assert_eq!(d.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn edge_removal_updates_both_sides() {
        let g = generators::cycle(4);
        let mut d = DynGraph::from_graph(&g);
        assert!(d.remove_edge(0, 1));
        assert!(!d.has_edge(0, 1));
        assert!(!d.has_edge(1, 0));
        assert_eq!(d.m(), 3);
        assert!(d.is_connected(), "cycle minus one edge is a path");
        assert!(!d.remove_edge(0, 1), "double removal reports false");
        assert_sorted(&d);
    }

    #[test]
    fn node_removal_clears_incident_edges() {
        let g = generators::complete(4);
        let mut d = DynGraph::from_graph(&g);
        assert!(d.remove_node(2));
        assert!(!d.is_alive(2));
        assert_eq!(d.n_alive(), 3);
        assert_eq!(d.m(), 3, "K4 minus a node is K3");
        assert_eq!(d.degree(2), 0);
        assert!(!d.remove_node(2));
        for v in [0u32, 1, 3] {
            assert!(!d.neighbors(v).contains(&2));
        }
        assert_sorted(&d);
    }

    #[test]
    fn node_arrival_gets_a_fresh_id() {
        let g = generators::path(3);
        let mut d = DynGraph::from_graph(&g);
        let v = d.add_node();
        assert_eq!(v, 3);
        assert_eq!(d.n_slots(), 4);
        assert_eq!(d.n_alive(), 4);
        assert!(d.is_alive(v));
        assert_eq!(d.degree(v), 0);
        assert!(!d.is_connected(), "a fresh node starts isolated");
        assert!(d.add_edge(v, 2));
        assert!(d.is_connected());
        assert_sorted(&d);
    }

    #[test]
    fn dead_ids_are_never_recycled() {
        let g = generators::path(3);
        let mut d = DynGraph::from_graph(&g);
        d.remove_node(1);
        let v = d.add_node();
        assert_eq!(v, 3, "arrivals extend the id space past dead slots");
        assert!(!d.is_alive(1));
    }

    #[test]
    fn add_edge_rejects_invalid_endpoints() {
        let g = generators::path(4);
        let mut d = DynGraph::from_graph(&g);
        assert!(!d.add_edge(0, 0), "self-loop");
        assert!(!d.add_edge(0, 1), "already present");
        assert!(!d.add_edge(1, 0), "already present, reversed");
        assert!(!d.add_edge(0, 9), "out of range");
        d.remove_node(3);
        assert!(!d.add_edge(2, 3), "dead endpoint");
        assert_eq!(d.m(), 2);
        assert!(d.add_edge(0, 2));
        assert_eq!(d.m(), 3);
        assert!(d.has_edge(2, 0));
        assert_sorted(&d);
    }

    #[test]
    fn disconnection_is_detected() {
        let g = generators::path(4); // 0-1-2-3
        let mut d = DynGraph::from_graph(&g);
        d.remove_edge(1, 2);
        assert!(!d.is_connected());
        assert_eq!(d.component_of(0), vec![0, 1]);
        assert_eq!(d.component_of(3), vec![2, 3]);
    }

    #[test]
    fn snapshot_round_trips() {
        let g = generators::grid(3, 3);
        let mut d = DynGraph::from_graph(&g);
        d.remove_edge(0, 1);
        d.remove_node(8);
        let s = d.snapshot();
        assert_eq!(s.n(), 9);
        assert_eq!(s.m(), d.m());
        assert!(!s.has_edge(0, 1));
        assert_eq!(s.degree(8), 0);
    }

    #[test]
    fn snapshot_covers_arrivals() {
        let g = generators::cycle(4);
        let mut d = DynGraph::from_graph(&g);
        let v = d.add_node();
        d.add_edge(v, 0);
        d.add_edge(v, 2);
        let s = d.snapshot();
        assert_eq!(s.n(), 5);
        assert_eq!(s.m(), 6);
        assert_eq!(s.neighbors(v), &[0, 2]);
        assert!(s.has_edge(0, v));
    }

    #[test]
    fn component_of_dead_node_is_empty() {
        let g = generators::path(3);
        let mut d = DynGraph::from_graph(&g);
        d.remove_node(1);
        assert!(d.component_of(1).is_empty());
        assert!(!d.is_connected());
    }

    #[test]
    fn fully_deleted_graph_is_trivially_connected() {
        let g = generators::path(3);
        let mut d = DynGraph::from_graph(&g);
        for v in 0..3 {
            d.remove_node(v);
        }
        assert_eq!(d.n_alive(), 0);
        assert_eq!(d.m(), 0);
        assert!(d.is_connected());
    }

    /// Satellite property: a random interleaving of add/remove operations
    /// leaves `DynGraph` agreeing with a from-scratch rebuild of the same
    /// final edge set (nodes, edges, degrees, connectivity). Deterministic
    /// seeded sweep, kept Miri-light (CI runs this file under Miri).
    #[test]
    fn random_churn_agrees_with_rebuild() {
        for seed in 0..4u64 {
            let mut rng = Xoshiro256::seed_from_u64(0xD1CE_0000 + seed);
            let g = generators::gnp(12, 0.3, &mut rng);
            let mut d = DynGraph::from_graph(&g);
            for _ in 0..60 {
                match rng.gen_range(4) {
                    0 => {
                        let v = d.add_node();
                        // Attach to a random alive node so arrivals matter.
                        let pool: Vec<NodeId> = d.alive_nodes().filter(|&u| u != v).collect();
                        if !pool.is_empty() {
                            let u = *rng.choose(&pool);
                            d.add_edge(v, u);
                        }
                    }
                    1 => {
                        let pool: Vec<NodeId> = d.alive_nodes().collect();
                        if pool.len() >= 2 {
                            let u = *rng.choose(&pool);
                            let w = *rng.choose(&pool);
                            d.add_edge(u, w);
                        }
                    }
                    2 => {
                        let edges: Vec<Edge> = d.edges().collect();
                        if !edges.is_empty() {
                            let (u, w) = *rng.choose(&edges);
                            d.remove_edge(u, w);
                        }
                    }
                    _ => {
                        let pool: Vec<NodeId> = d.alive_nodes().collect();
                        if pool.len() > 2 {
                            d.remove_node(*rng.choose(&pool));
                        }
                    }
                }
            }
            assert_sorted(&d);
            // From-scratch rebuild: replay only the surviving edge set into
            // a fresh builder-backed Graph and compare every observable.
            let rebuilt = {
                let mut b = crate::GraphBuilder::new(d.n_slots());
                for (u, v) in d.edges() {
                    b.add_edge(u, v);
                }
                b.build()
            };
            let snap = d.snapshot();
            assert_eq!(snap.n(), rebuilt.n());
            assert_eq!(snap.m(), rebuilt.m());
            assert_eq!(d.m(), rebuilt.m());
            for v in 0..d.n_slots() as NodeId {
                assert_eq!(snap.neighbors(v), rebuilt.neighbors(v), "row {v}");
                assert_eq!(d.degree(v), rebuilt.degree(v));
            }
            // Connectivity of the alive part must agree with a BFS over
            // the rebuilt snapshot restricted to alive nodes.
            let first_alive = d.alive_nodes().next();
            if let Some(start) = first_alive {
                let reach = d.component_of(start);
                let mut seen = vec![false; rebuilt.n()];
                let mut stack = vec![start];
                seen[start as usize] = true;
                let mut count = 0usize;
                while let Some(v) = stack.pop() {
                    count += 1;
                    for &w in rebuilt.neighbors(v) {
                        if !seen[w as usize] {
                            seen[w as usize] = true;
                            stack.push(w);
                        }
                    }
                }
                assert_eq!(reach.len(), count);
                assert_eq!(d.is_connected(), count == d.n_alive());
            }
        }
    }
}
