//! Mutable graphs supporting *decreasing benign faults*.
//!
//! The paper's fault model (Section 1) only ever removes structure: "a node
//! or edge may permanently be deleted from the graph because it
//! malfunctions, but nodes and edges never join the network". [`DynGraph`]
//! implements exactly that interface — deletion only — so the type system
//! itself rules out the faults the model excludes.

use crate::{Edge, Graph, NodeId};

/// An undirected graph from which edges and nodes can be removed.
///
/// Adjacency is an unsorted `Vec` per node; removals use `swap_remove`, so
/// deleting an edge costs O(deg(u) + deg(v)) and deleting a node costs the
/// sum over its incident edges. Node deletion marks the node dead; dead
/// nodes keep their id (ids are stable for the lifetime of the simulation)
/// but have no neighbours and are skipped by schedulers.
#[derive(Clone, Debug)]
pub struct DynGraph {
    adj: Vec<Vec<NodeId>>,
    alive: Vec<bool>,
    m: usize,
    alive_count: usize,
}

impl DynGraph {
    /// Starts from an immutable snapshot.
    pub fn from_graph(g: &Graph) -> Self {
        let adj = g.nodes().map(|v| g.neighbors(v).to_vec()).collect();
        Self {
            adj,
            alive: vec![true; g.n()],
            m: g.m(),
            alive_count: g.n(),
        }
    }

    /// Total node slots (alive or dead); ids range over `0..n_slots()`.
    pub fn n_slots(&self) -> usize {
        self.adj.len()
    }

    /// Number of alive nodes.
    pub fn n_alive(&self) -> usize {
        self.alive_count
    }

    /// Number of remaining undirected edges.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Whether node `v` is still alive.
    #[inline]
    pub fn is_alive(&self, v: NodeId) -> bool {
        self.alive[v as usize]
    }

    /// Current neighbours of `v` (unordered). Empty for dead nodes.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v as usize]
    }

    /// Current degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].len()
    }

    /// Whether `{u,v}` is currently an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u as usize].contains(&v)
    }

    /// Iterates alive node ids.
    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n_slots() as NodeId).filter(move |&v| self.alive[v as usize])
    }

    /// Removes the edge `{u, v}`. Returns `true` if it existed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let removed = Self::remove_from(&mut self.adj[u as usize], v);
        if removed {
            let also = Self::remove_from(&mut self.adj[v as usize], u);
            debug_assert!(also, "adjacency lists out of sync");
            self.m -= 1;
        }
        removed
    }

    /// Removes node `v` and all incident edges. Returns `true` if it was
    /// alive.
    pub fn remove_node(&mut self, v: NodeId) -> bool {
        if !self.alive[v as usize] {
            return false;
        }
        self.alive[v as usize] = false;
        self.alive_count -= 1;
        let nbrs = std::mem::take(&mut self.adj[v as usize]);
        self.m -= nbrs.len();
        for u in nbrs {
            let removed = Self::remove_from(&mut self.adj[u as usize], v);
            debug_assert!(removed, "adjacency lists out of sync");
        }
        true
    }

    fn remove_from(list: &mut Vec<NodeId>, x: NodeId) -> bool {
        if let Some(i) = list.iter().position(|&y| y == x) {
            list.swap_remove(i);
            true
        } else {
            false
        }
    }

    /// One-pass CSR export of the current topology: `(offsets, targets)`
    /// with `targets[offsets[v] as usize..offsets[v + 1] as usize]` the
    /// current (unsorted) neighbours of `v`. Dead nodes appear as empty
    /// rows. This is the engine's compiled-kernel fast path: a flat,
    /// cache-friendly mirror of the adjacency with no edge-list
    /// materialization and no sorting.
    pub fn csr_arrays(&self) -> (Vec<u32>, Vec<NodeId>) {
        let n = self.n_slots();
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + self.adj[v].len() as u32;
        }
        let mut targets = Vec::with_capacity(offsets[n] as usize);
        for row in &self.adj {
            targets.extend_from_slice(row);
        }
        (offsets, targets)
    }

    /// Snapshot of the *current* graph as a CSR [`Graph`] over all node
    /// slots (dead nodes appear isolated). Useful for handing the exact
    /// oracles a consistent view mid-fault-campaign. Built via
    /// [`Self::csr_arrays`] plus a per-row sort — O(m log Δ), with no
    /// intermediate edge list.
    pub fn snapshot(&self) -> Graph {
        let (offsets, mut targets) = self.csr_arrays();
        for v in 0..self.n_slots() {
            targets[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        Graph::from_sorted_csr(offsets, targets)
    }

    /// Iterates remaining undirected edges, each once with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.n_slots() as NodeId).flat_map(move |u| {
            self.adj[u as usize]
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// The set of alive nodes reachable from `start` in the current graph
    /// (`start` included, if alive).
    pub fn component_of(&self, start: NodeId) -> Vec<NodeId> {
        if !self.is_alive(start) {
            return Vec::new();
        }
        let mut seen = vec![false; self.n_slots()];
        let mut stack = vec![start];
        let mut out = Vec::new();
        seen[start as usize] = true;
        while let Some(v) = stack.pop() {
            out.push(v);
            for &w in self.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Whether the alive part of the graph is connected (vacuously true if
    /// fewer than two alive nodes remain).
    pub fn is_connected(&self) -> bool {
        let mut alive = self.alive_nodes();
        match alive.next() {
            None => true,
            Some(v) => self.component_of(v).len() == self.n_alive(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn starts_equal_to_source() {
        let g = generators::cycle(5);
        let d = DynGraph::from_graph(&g);
        assert_eq!(d.n_alive(), 5);
        assert_eq!(d.m(), 5);
        assert!(d.is_connected());
        for v in g.nodes() {
            let mut a = d.neighbors(v).to_vec();
            a.sort_unstable();
            assert_eq!(a, g.neighbors(v));
        }
    }

    #[test]
    fn edge_removal_updates_both_sides() {
        let g = generators::cycle(4);
        let mut d = DynGraph::from_graph(&g);
        assert!(d.remove_edge(0, 1));
        assert!(!d.has_edge(0, 1));
        assert!(!d.has_edge(1, 0));
        assert_eq!(d.m(), 3);
        assert!(d.is_connected(), "cycle minus one edge is a path");
        assert!(!d.remove_edge(0, 1), "double removal reports false");
    }

    #[test]
    fn node_removal_clears_incident_edges() {
        let g = generators::complete(4);
        let mut d = DynGraph::from_graph(&g);
        assert!(d.remove_node(2));
        assert!(!d.is_alive(2));
        assert_eq!(d.n_alive(), 3);
        assert_eq!(d.m(), 3, "K4 minus a node is K3");
        assert_eq!(d.degree(2), 0);
        assert!(!d.remove_node(2));
        for v in [0u32, 1, 3] {
            assert!(!d.neighbors(v).contains(&2));
        }
    }

    #[test]
    fn disconnection_is_detected() {
        let g = generators::path(4); // 0-1-2-3
        let mut d = DynGraph::from_graph(&g);
        d.remove_edge(1, 2);
        assert!(!d.is_connected());
        assert_eq!(d.component_of(0), vec![0, 1]);
        assert_eq!(d.component_of(3), vec![2, 3]);
    }

    #[test]
    fn snapshot_round_trips() {
        let g = generators::grid(3, 3);
        let mut d = DynGraph::from_graph(&g);
        d.remove_edge(0, 1);
        d.remove_node(8);
        let s = d.snapshot();
        assert_eq!(s.n(), 9);
        assert_eq!(s.m(), d.m());
        assert!(!s.has_edge(0, 1));
        assert_eq!(s.degree(8), 0);
    }

    #[test]
    fn component_of_dead_node_is_empty() {
        let g = generators::path(3);
        let mut d = DynGraph::from_graph(&g);
        d.remove_node(1);
        assert!(d.component_of(1).is_empty());
        assert!(!d.is_connected());
    }

    #[test]
    fn fully_deleted_graph_is_trivially_connected() {
        let g = generators::path(3);
        let mut d = DynGraph::from_graph(&g);
        for v in 0..3 {
            d.remove_node(v);
        }
        assert_eq!(d.n_alive(), 0);
        assert_eq!(d.m(), 0);
        assert!(d.is_connected());
    }
}
