//! Criterion benches for E4: Theorem 3.7 conversion costs and the
//! relative evaluation cost of the three program representations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fssga_core::convert::{mt_to_par, par_to_seq, seq_to_mt, DEFAULT_LIMIT};
use fssga_core::multiset::Multiset;
use fssga_core::library;

fn bench_conversions(c: &mut Criterion) {
    let mut group = c.benchmark_group("convert/seq-to-mt");
    for k in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("count-mod", k), &k, |b, &k| {
            let seq = library::count_ones_mod_seq(k);
            b.iter(|| seq_to_mt(&seq, DEFAULT_LIMIT).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("convert/mt-to-par");
    for k in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("count-mod", k), &k, |b, &k| {
            let mt = seq_to_mt(&library::count_ones_mod_seq(k), DEFAULT_LIMIT).unwrap();
            b.iter(|| mt_to_par(&mt, DEFAULT_LIMIT).unwrap());
        });
    }
    group.finish();
}

fn bench_representations(c: &mut Criterion) {
    // Ablation: the same SM function evaluated as seq / par / mod-thresh.
    let seq = library::count_ones_mod_seq(8);
    let mt = seq_to_mt(&seq, DEFAULT_LIMIT).unwrap();
    let par = mt_to_par(&mt, DEFAULT_LIMIT).unwrap();
    let back = par_to_seq(&par);
    let ms = Multiset::from_counts(vec![1_000_003, 999_983]);
    let mut group = c.benchmark_group("eval/representations");
    group.bench_function("sequential", |b| b.iter(|| seq.eval_multiset(&ms)));
    group.bench_function("mod-thresh", |b| b.iter(|| mt.eval_multiset(&ms)));
    group.bench_function("parallel", |b| b.iter(|| par.eval_multiset(&ms)));
    group.bench_function("par-to-seq", |b| b.iter(|| back.eval_multiset(&ms)));
    group.finish();
}

criterion_group!(benches, bench_conversions, bench_representations);
criterion_main!(benches);
