//! Benches for E4: Theorem 3.7 conversion costs and the relative
//! evaluation cost of the three program representations.

use fssga_bench::harness::harness_from_args;
use fssga_core::convert::{mt_to_par, par_to_seq, seq_to_mt, DEFAULT_LIMIT};
use fssga_core::library;
use fssga_core::multiset::Multiset;

fn main() {
    let mut h = harness_from_args();
    for k in [4usize, 16, 64] {
        let seq = library::count_ones_mod_seq(k);
        h.bench(&format!("convert/seq-to-mt/count-mod/{k}"), || {
            seq_to_mt(&seq, DEFAULT_LIMIT).unwrap()
        });
    }
    for k in [2usize, 4, 8] {
        let mt = seq_to_mt(&library::count_ones_mod_seq(k), DEFAULT_LIMIT).unwrap();
        h.bench(&format!("convert/mt-to-par/count-mod/{k}"), || {
            mt_to_par(&mt, DEFAULT_LIMIT).unwrap()
        });
    }

    // Ablation: the same SM function evaluated as seq / par / mod-thresh.
    let seq = library::count_ones_mod_seq(8);
    let mt = seq_to_mt(&seq, DEFAULT_LIMIT).unwrap();
    let par = mt_to_par(&mt, DEFAULT_LIMIT).unwrap();
    let back = par_to_seq(&par);
    let ms = Multiset::from_counts(vec![1_000_003, 999_983]);
    h.bench("eval/representations/sequential", || seq.eval_multiset(&ms));
    h.bench("eval/representations/mod-thresh", || mt.eval_multiset(&ms));
    h.bench("eval/representations/parallel", || par.eval_multiset(&ms));
    h.bench("eval/representations/par-to-seq", || {
        back.eval_multiset(&ms)
    });
}
