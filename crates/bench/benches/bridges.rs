//! Benches for E2: random-walk step throughput vs the Tarjan oracle.

use fssga_bench::harness::harness_from_args;
use fssga_graph::{exact, generators, rng::Xoshiro256};
use fssga_protocols::bridges::BridgeWalk;

fn main() {
    let mut h = harness_from_args();
    for n in [32usize, 128, 512] {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let g = generators::cycle_with_chords(n, n / 4, &mut rng);
        let mut walk = BridgeWalk::new(&g, 0);
        h.bench(&format!("bridges/1000-walk-steps/{n}"), || {
            walk.run(1000, &mut rng)
        });
    }
    for n in [128usize, 1024, 8192] {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let g = generators::connected_gnp(n, 8.0 / n as f64, &mut rng);
        h.bench(&format!("bridges/tarjan/{n}"), || exact::bridges(&g));
    }
}
