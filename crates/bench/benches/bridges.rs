//! Criterion benches for E2: random-walk step throughput vs the Tarjan
//! oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fssga_graph::{exact, generators, rng::Xoshiro256};
use fssga_protocols::bridges::BridgeWalk;

fn bench_walk_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("bridges/1000-walk-steps");
    for n in [32usize, 128, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = Xoshiro256::seed_from_u64(3);
            let g = generators::cycle_with_chords(n, n / 4, &mut rng);
            let mut walk = BridgeWalk::new(&g, 0);
            b.iter(|| walk.run(1000, &mut rng));
        });
    }
    group.finish();
}

fn bench_tarjan_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("bridges/tarjan");
    for n in [128usize, 1024, 8192] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = Xoshiro256::seed_from_u64(4);
            let g = generators::connected_gnp(n, 8.0 / n as f64, &mut rng);
            b.iter(|| exact::bridges(&g));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_walk_steps, bench_tarjan_oracle);
criterion_main!(benches);
