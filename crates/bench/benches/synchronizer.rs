//! Benches for E6: the cost of the alpha-synchronizer wrapper.

use fssga_bench::harness::harness_from_args;
use fssga_engine::Network;
use fssga_graph::{generators, rng::Xoshiro256, NodeId};
use fssga_protocols::shortest_paths::ShortestPaths;
use fssga_protocols::synchronizer::alpha_network;

fn main() {
    let mut h = harness_from_args();
    let g = generators::grid(24, 24);

    let mut net = Network::new(&g, ShortestPaths::<256>, |v| {
        ShortestPaths::<256>::init(v == 0)
    });
    let mut rng = Xoshiro256::seed_from_u64(5);
    h.bench("synchronizer/one-sweep/raw-sync-round", || {
        net.sync_step(&mut rng)
    });

    let mut net = alpha_network(&g, ShortestPaths::<256>, |v| {
        ShortestPaths::<256>::init(v == 0)
    });
    let mut rng = Xoshiro256::seed_from_u64(5);
    let order: Vec<NodeId> = (0..g.n() as NodeId).collect();
    h.bench("synchronizer/one-sweep/alpha-wrapped-sweep", || {
        for &v in &order {
            net.activate(v, &mut rng);
        }
    });
}
