//! Criterion benches for E6: the cost of the alpha-synchronizer wrapper.

use criterion::{criterion_group, criterion_main, Criterion};
use fssga_engine::Network;
use fssga_graph::{generators, rng::Xoshiro256, NodeId};
use fssga_protocols::shortest_paths::ShortestPaths;
use fssga_protocols::synchronizer::alpha_network;

fn bench_wrapper_overhead(c: &mut Criterion) {
    let g = generators::grid(24, 24);
    let mut group = c.benchmark_group("synchronizer/one-sweep");
    group.bench_function("raw-sync-round", |b| {
        let mut net =
            Network::new(&g, ShortestPaths::<256>, |v| ShortestPaths::<256>::init(v == 0));
        let mut rng = Xoshiro256::seed_from_u64(5);
        b.iter(|| net.sync_step(&mut rng));
    });
    group.bench_function("alpha-wrapped-sweep", |b| {
        let mut net = alpha_network(&g, ShortestPaths::<256>, |v| {
            ShortestPaths::<256>::init(v == 0)
        });
        let mut rng = Xoshiro256::seed_from_u64(5);
        let order: Vec<NodeId> = (0..g.n() as NodeId).collect();
        b.iter(|| {
            for &v in &order {
                net.activate(v, &mut rng);
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_wrapper_overhead);
criterion_main!(benches);
