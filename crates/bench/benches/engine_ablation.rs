//! Ablation benches for the engine design decisions called out in
//! DESIGN.md: sequential vs multi-threaded synchronous rounds,
//! interpreted mod-thresh tables vs native Rust transitions, and the
//! compiled kernel vs the interpreter (see `fssga-bench engine` for the
//! recorded large-n baseline).

use fssga_bench::harness::harness_from_args;
use fssga_engine::compile::compile_protocol;
use fssga_engine::interp::InterpNetwork;
use fssga_engine::parallel::sync_step_parallel;
use fssga_engine::{Budget, Engine, Network, Runner, StateSpace};
use fssga_graph::{generators, rng::Xoshiro256};
use fssga_protocols::two_coloring::TwoColoring;

fn main() {
    let mut h = harness_from_args();

    let g = generators::grid(128, 128);
    let mut net = Network::new(&g, TwoColoring, |v| TwoColoring::init(v == 0));
    let mut rng = Xoshiro256::seed_from_u64(10);
    h.bench("engine/sync-round-16k-nodes/sequential", || {
        net.sync_step(&mut rng)
    });
    for threads in [2usize, 4, 8] {
        let mut net = Network::new(&g, TwoColoring, |v| TwoColoring::init(v == 0));
        let mut rng = Xoshiro256::seed_from_u64(10);
        h.bench(
            &format!("engine/sync-round-16k-nodes/threads/{threads}"),
            || sync_step_parallel(&mut net, &mut rng, threads),
        );
    }

    let g = generators::grid(32, 32);
    let auto = compile_protocol(&TwoColoring, 1 << 16).unwrap();
    let mut net = Network::new(&g, TwoColoring, |v| TwoColoring::init(v == 0));
    let mut seed = 0u64;
    h.bench("engine/native-vs-interpreted/native-protocol", || {
        seed += 1;
        net.sync_step_seeded(seed)
    });
    let mut net = InterpNetwork::new(&g, &auto, |v| TwoColoring::init(v == 0).index());
    let mut seed = 0u64;
    h.bench(
        "engine/native-vs-interpreted/compiled-mod-thresh-tables",
        || {
            seed += 1;
            net.sync_step_seeded(seed)
        },
    );

    // Kernel vs interpreter, full fixpoint from a fresh network each time.
    let g = generators::grid(64, 64);
    for (label, engine) in [
        ("interpreter", Engine::Interpreter),
        ("kernel", Engine::Kernel),
    ] {
        h.bench(&format!("engine/coloring-fixpoint-4k/{label}"), || {
            let mut net = Network::new(&g, TwoColoring, |v| TwoColoring::init(v == 0));
            Runner::new(&mut net)
                .engine(engine)
                .budget(Budget::Fixpoint(10 * 64 * 64))
                .run()
                .fixpoint
                .expect("stabilizes")
        });
    }
}
