//! Ablation benches for the engine design decisions called out in
//! DESIGN.md: sequential vs multi-threaded synchronous rounds, and
//! interpreted mod-thresh tables vs native Rust transitions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fssga_engine::compile::compile_protocol;
use fssga_engine::interp::InterpNetwork;
use fssga_engine::parallel::sync_step_parallel;
use fssga_engine::{Network, StateSpace};
use fssga_graph::{generators, rng::Xoshiro256};
use fssga_protocols::two_coloring::TwoColoring;

fn bench_parallel_rounds(c: &mut Criterion) {
    let g = generators::grid(128, 128);
    let mut group = c.benchmark_group("engine/sync-round-16k-nodes");
    group.bench_function("sequential", |b| {
        let mut net = Network::new(&g, TwoColoring, |v| TwoColoring::init(v == 0));
        let mut rng = Xoshiro256::seed_from_u64(10);
        b.iter(|| net.sync_step(&mut rng));
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                let mut net = Network::new(&g, TwoColoring, |v| TwoColoring::init(v == 0));
                let mut rng = Xoshiro256::seed_from_u64(10);
                b.iter(|| sync_step_parallel(&mut net, &mut rng, threads));
            },
        );
    }
    group.finish();
}

fn bench_interp_vs_native(c: &mut Criterion) {
    let g = generators::grid(32, 32);
    let auto = compile_protocol(&TwoColoring, 1 << 16).unwrap();
    let mut group = c.benchmark_group("engine/native-vs-interpreted");
    group.bench_function("native-protocol", |b| {
        let mut net = Network::new(&g, TwoColoring, |v| TwoColoring::init(v == 0));
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            net.sync_step_seeded(seed)
        });
    });
    group.bench_function("compiled-mod-thresh-tables", |b| {
        let mut net =
            InterpNetwork::new(&g, &auto, |v| TwoColoring::init(v == 0).index());
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            net.sync_step_seeded(seed)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_parallel_rounds, bench_interp_vs_native);
criterion_main!(benches);
