//! Criterion benches for E11: full leader elections by size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fssga_graph::{generators, rng::Xoshiro256};
use fssga_protocols::election::ElectionHarness;

fn bench_election(c: &mut Criterion) {
    let mut group = c.benchmark_group("election/full");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = Xoshiro256::seed_from_u64(9);
            let g = generators::connected_gnp(n, (2.2 * (n as f64).ln()) / n as f64, &mut rng);
            b.iter(|| {
                let mut h = ElectionHarness::new(&g);
                let run = h.run(1_000_000, &mut rng);
                assert!(run.leader.is_some());
                run.rounds
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_election);
criterion_main!(benches);
