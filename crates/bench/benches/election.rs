//! Benches for E11: full leader elections by size.

use fssga_bench::harness::harness_from_args;
use fssga_graph::{generators, rng::Xoshiro256};
use fssga_protocols::election::ElectionHarness;

fn main() {
    let mut h = harness_from_args();
    for n in [8usize, 16, 32] {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let g = generators::connected_gnp(n, (2.2 * (n as f64).ln()) / n as f64, &mut rng);
        h.bench(&format!("election/full/{n}"), || {
            let mut harness = ElectionHarness::new(&g);
            let run = harness.run(1_000_000, &mut rng);
            assert!(run.leader.is_some());
            run.rounds
        });
    }
}
