//! Benches for E8: tournament-walk move latency by degree.

use fssga_bench::harness::harness_from_args;
use fssga_graph::{generators, rng::Xoshiro256};
use fssga_protocols::random_walk::WalkHarness;

fn main() {
    let mut h = harness_from_args();
    for d in [4usize, 32, 256] {
        let g = generators::star(d + 1);
        let mut rng = Xoshiro256::seed_from_u64(6);
        h.bench(&format!("random-walk/one-move/star-degree/{d}"), || {
            let mut harness = WalkHarness::new(&g, 0);
            harness.run(1, 1_000_000, &mut rng)
        });
    }
}
