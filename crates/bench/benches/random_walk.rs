//! Criterion benches for E8: tournament-walk move latency by degree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fssga_graph::{generators, rng::Xoshiro256};
use fssga_protocols::random_walk::WalkHarness;

fn bench_move_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("random-walk/one-move");
    group.sample_size(20);
    for d in [4usize, 32, 256] {
        group.bench_with_input(BenchmarkId::new("star-degree", d), &d, |b, &d| {
            let g = generators::star(d + 1);
            let mut rng = Xoshiro256::seed_from_u64(6);
            b.iter(|| {
                let mut h = WalkHarness::new(&g, 0);
                h.run(1, 1_000_000, &mut rng)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_move_latency);
criterion_main!(benches);
