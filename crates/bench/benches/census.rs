//! Criterion benches for E1: sketch unions and OR-diffusion rounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fssga_engine::Network;
use fssga_graph::{generators, rng::Xoshiro256};
use fssga_protocols::census::{union_of_fresh_sketches, Census, FmSketch};

fn bench_union(c: &mut Criterion) {
    let mut group = c.benchmark_group("census/union-of-sketches");
    for n in [256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = Xoshiro256::seed_from_u64(1);
            b.iter(|| union_of_fresh_sketches::<16>(n, &mut rng).estimate());
        });
    }
    group.finish();
}

fn bench_diffusion_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("census/diffusion-round");
    for side in [16usize, 32] {
        group.bench_with_input(
            BenchmarkId::new("grid", side * side),
            &side,
            |b, &side| {
                let g = generators::grid(side, side);
                let mut rng = Xoshiro256::seed_from_u64(2);
                let sketches: Vec<FmSketch<8>> =
                    (0..g.n()).map(|_| FmSketch::random_init(&mut rng)).collect();
                let mut net = Network::new(&g, Census::<8>, |v| sketches[v as usize]);
                b.iter(|| net.sync_step(&mut rng));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_union, bench_diffusion_round);
criterion_main!(benches);
