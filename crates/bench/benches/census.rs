//! Benches for E1: sketch unions and OR-diffusion rounds.

use fssga_bench::harness::harness_from_args;
use fssga_engine::Network;
use fssga_graph::{generators, rng::Xoshiro256};
use fssga_protocols::census::{union_of_fresh_sketches, Census, FmSketch};

fn main() {
    let mut h = harness_from_args();
    for n in [256usize, 1024, 4096] {
        let mut rng = Xoshiro256::seed_from_u64(1);
        h.bench(&format!("census/union-of-sketches/{n}"), || {
            union_of_fresh_sketches::<16>(n, &mut rng).estimate()
        });
    }
    for side in [16usize, 32] {
        let g = generators::grid(side, side);
        let mut rng = Xoshiro256::seed_from_u64(2);
        let sketches: Vec<FmSketch<8>> = (0..g.n())
            .map(|_| FmSketch::random_init(&mut rng))
            .collect();
        let mut net = Network::new(&g, Census::<8>, |v| sketches[v as usize]);
        h.bench(
            &format!("census/diffusion-round/grid/{}", side * side),
            || net.sync_step(&mut rng),
        );
    }
}
