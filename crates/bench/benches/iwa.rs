//! Criterion benches for E12: the cost of the IWA simulation vs the
//! native synchronous engine.

use criterion::{criterion_group, criterion_main, Criterion};
use fssga_core::modthresh::{ModThreshProgram, Prop};
use fssga_core::{Fssga, FsmProgram, ProbFssga};
use fssga_engine::interp::InterpNetwork;
use fssga_graph::generators;
use fssga_iwa::fssga_on_iwa::FssgaOnIwa;

fn infection() -> ProbFssga {
    let catch = ModThreshProgram::new(2, 2, vec![(Prop::some(1), 1)], 0).unwrap();
    let keep = ModThreshProgram::new(2, 2, vec![], 1).unwrap();
    ProbFssga::from_deterministic(
        Fssga::new(2, vec![FsmProgram::ModThresh(catch), FsmProgram::ModThresh(keep)]).unwrap(),
    )
}

fn bench_round_cost(c: &mut Criterion) {
    let auto = infection();
    let g = generators::grid(16, 16);
    let mut group = c.benchmark_group("iwa/one-fssga-round");
    group.bench_function("native-interp", |b| {
        let mut net = InterpNetwork::new(&g, &auto, |v| usize::from(v == 0));
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            net.sync_step_seeded(seed)
        });
    });
    group.bench_function("iwa-agent-simulation", |b| {
        let mut sim = FssgaOnIwa::new(&auto, &g, |v| usize::from(v == 0));
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            sim.sync_round(seed)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_round_cost);
criterion_main!(benches);
