//! Benches for E12: the cost of the IWA simulation vs the native
//! synchronous engine.

use fssga_bench::harness::harness_from_args;
use fssga_core::modthresh::{ModThreshProgram, Prop};
use fssga_core::{FsmProgram, Fssga, ProbFssga};
use fssga_engine::interp::InterpNetwork;
use fssga_graph::generators;
use fssga_iwa::fssga_on_iwa::FssgaOnIwa;

fn infection() -> ProbFssga {
    let catch = ModThreshProgram::new(2, 2, vec![(Prop::some(1), 1)], 0).unwrap();
    let keep = ModThreshProgram::new(2, 2, vec![], 1).unwrap();
    ProbFssga::from_deterministic(
        Fssga::new(
            2,
            vec![FsmProgram::ModThresh(catch), FsmProgram::ModThresh(keep)],
        )
        .unwrap(),
    )
}

fn main() {
    let mut h = harness_from_args();
    let auto = infection();
    let g = generators::grid(16, 16);

    let mut net = InterpNetwork::new(&g, &auto, |v| usize::from(v == 0));
    let mut seed = 0u64;
    h.bench("iwa/one-fssga-round/native-interp", || {
        seed += 1;
        net.sync_step_seeded(seed)
    });

    let mut sim = FssgaOnIwa::new(&auto, &g, |v| usize::from(v == 0));
    let mut seed = 0u64;
    h.bench("iwa/one-fssga-round/iwa-agent-simulation", || {
        seed += 1;
        sim.sync_round(seed)
    });
}
