//! Criterion benches for E9/E10: full traversals by size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fssga_graph::{generators, rng::Xoshiro256};
use fssga_protocols::greedy_tourist::GreedyTourist;
use fssga_protocols::traversal::TraversalHarness;

fn bench_milgram(c: &mut Criterion) {
    let mut group = c.benchmark_group("traversal/milgram-full");
    group.sample_size(10);
    for n in [16usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = Xoshiro256::seed_from_u64(7);
            let g = generators::connected_gnp(n, (2.2 * (n as f64).ln()) / n as f64, &mut rng);
            b.iter(|| {
                let mut h = TraversalHarness::new(&g, 0);
                h.run(50_000 * n as u64, &mut rng, false)
            });
        });
    }
    group.finish();
}

fn bench_tourist(c: &mut Criterion) {
    let mut group = c.benchmark_group("traversal/greedy-tourist-full");
    group.sample_size(10);
    for n in [16usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = Xoshiro256::seed_from_u64(8);
            let g = generators::connected_gnp(n, (2.2 * (n as f64).ln()) / n as f64, &mut rng);
            b.iter(|| {
                let mut t = GreedyTourist::new(&g, 0);
                t.run(50_000_000, &mut rng)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_milgram, bench_tourist);
criterion_main!(benches);
