//! Benches for E9/E10: full traversals by size.

use fssga_bench::harness::harness_from_args;
use fssga_graph::{generators, rng::Xoshiro256};
use fssga_protocols::greedy_tourist::GreedyTourist;
use fssga_protocols::traversal::TraversalHarness;

fn main() {
    let mut h = harness_from_args();
    for n in [16usize, 64] {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let g = generators::connected_gnp(n, (2.2 * (n as f64).ln()) / n as f64, &mut rng);
        h.bench(&format!("traversal/milgram-full/{n}"), || {
            let mut t = TraversalHarness::new(&g, 0);
            t.run(50_000 * n as u64, &mut rng, false)
        });
    }
    for n in [16usize, 64] {
        let mut rng = Xoshiro256::seed_from_u64(8);
        let g = generators::connected_gnp(n, (2.2 * (n as f64).ln()) / n as f64, &mut rng);
        h.bench(&format!("traversal/greedy-tourist-full/{n}"), || {
            let mut t = GreedyTourist::new(&g, 0);
            t.run(50_000_000, &mut rng)
        });
    }
}
