//! E11 — randomized leader election (paper §4.7, Claims 4.1 and 4.2).

use fssga_graph::generators;
use fssga_graph::rng::Xoshiro256;
use fssga_protocols::election::ElectionHarness;

use crate::fit::{mean, power_law_exponent};
use crate::report::{f, Table};

/// Runs E11: uniqueness + O(n log n) rounds + Θ(log n) phases +
/// the Claim 4.1 per-phase elimination rate.
pub fn e11_election(seed: u64, quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E11a: leader election scaling",
        &[
            "n",
            "trials",
            "unique-leader",
            "mean-rounds",
            "mean-phases",
            "log2(n)",
            "rounds/phase/n",
        ],
    );
    let sizes: &[usize] = if quick {
        &[8, 16, 32]
    } else {
        &[8, 16, 32, 64, 128, 256]
    };
    let trials = if quick { 4 } else { 10 };
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut elim_obs: Vec<(usize, usize)> = Vec::new(); // (before, after) per phase
    for &n in sizes {
        let mut unique = 0;
        let mut rounds = Vec::new();
        let mut phases = Vec::new();
        let mut phase_len = Vec::new();
        for i in 0..trials {
            let mut rng = Xoshiro256::seed_from_u64(seed + (n as u64) * 1000 + i as u64);
            let g = generators::connected_gnp(n, (2.2 * (n as f64).ln()) / n as f64, &mut rng);
            let mut h = ElectionHarness::new(&g);
            let run = h.run(20_000 * n as u64 + 200_000, &mut rng);
            if run.leader.is_some() {
                unique += 1;
            }
            rounds.push(run.rounds as f64);
            phases.push(run.phases as f64);
            // Non-final phases only (the last includes the agent tail).
            if run.phase_durations.len() > 2 {
                for &d in &run.phase_durations[1..run.phase_durations.len() - 1] {
                    phase_len.push(d as f64);
                }
            }
            for w in run.remaining_per_phase.windows(2) {
                if w[0] > 1 {
                    elim_obs.push((w[0], w[1]));
                }
            }
        }
        let per_phase_per_n = if phase_len.is_empty() {
            0.0
        } else {
            mean(&phase_len) / n as f64
        };
        t.row(vec![
            n.to_string(),
            trials.to_string(),
            format!("{unique}/{trials}"),
            f(mean(&rounds)),
            f(mean(&phases)),
            f((n as f64).log2()),
            f(per_phase_per_n),
        ]);
        xs.push(n as f64);
        ys.push(mean(&rounds));
    }
    let p = power_law_exponent(&xs, &ys);
    t.note("paper: exactly one leader at termination w.h.p., O(n log n) time;");
    t.note("Claim 4.2: non-final phases take O(n) rounds — the rounds/phase/n column");
    t.note("should stay bounded (the recolouring check fires within O(n) w.h.p.)");
    t.note(format!(
        "Θ(log n) phases; measured rounds ~ n^{} (expect 1 <= p < 1.5)",
        f(p)
    ));

    // Claim 4.1: a non-unique remaining node is eliminated with
    // probability >= 1/4 per phase. We estimate the per-candidate
    // elimination rate across observed phase transitions.
    let mut c41 = Table::new(
        "E11b: Claim 4.1 — per-phase elimination rate among non-unique candidates",
        &[
            "phase-transitions",
            "candidates-at-risk",
            "eliminated",
            "rate",
        ],
    );
    let transitions = elim_obs.len();
    let at_risk: usize = elim_obs.iter().map(|&(b, _)| b).sum();
    let eliminated: usize = elim_obs.iter().map(|&(b, a)| b.saturating_sub(a)).sum();
    let rate = eliminated as f64 / at_risk.max(1) as f64;
    c41.row(vec![
        transitions.to_string(),
        at_risk.to_string(),
        eliminated.to_string(),
        f(rate),
    ]);
    c41.note("paper (Claim 4.1): each remaining node is eliminated w.p. >= 1/4 per");
    c41.note("phase whenever another candidate remains; the measured rate should be >= 0.25");

    vec![t, c41]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_shape() {
        let tables = e11_election(23, true);
        for row in &tables[0].rows {
            let parts: Vec<&str> = row[2].split('/').collect();
            assert_eq!(parts[0], parts[1], "every trial elects: {row:?}");
        }
        let rate = tables[1].column_f64("rate")[0];
        assert!(rate >= 0.25, "Claim 4.1 elimination rate = {rate}");
    }
}
