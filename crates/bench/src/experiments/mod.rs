//! The E1–E14 experiment suite (see `DESIGN.md` for the index).
//!
//! Every experiment takes a seed and returns one or more [`Table`]s whose
//! shape is asserted by the integration tests; `EXPERIMENTS.md` records
//! the paper-vs-measured comparison for each.

mod e_bridges;
mod e_census;
mod e_coloring;
mod e_conversions;
mod e_election;
mod e_extensions;
mod e_iwa;
mod e_paths;
mod e_sensitivity;
mod e_sync;
mod e_traversal;
mod e_walk;

pub use e_bridges::e2_bridge_detection;
pub use e_census::e1_census;
pub use e_coloring::e5_two_coloring;
pub use e_conversions::{e14_tree_combination, e4_conversion_blowup};
pub use e_election::e11_election;
pub use e_extensions::e15_extensions;
pub use e_iwa::e12_iwa_simulations;
pub use e_paths::{e3_shortest_paths, e7_bfs};
pub use e_sensitivity::e13_sensitivity_ranking;
pub use e_sync::e6_synchronizer;
pub use e_traversal::{e10_greedy_tourist, e9_milgram_traversal};
pub use e_walk::e8_random_walk;

use crate::report::Table;

/// Runs one experiment by id ("e1" .. "e14"); `quick` shrinks the
/// workloads (used by the integration tests).
pub fn run(id: &str, seed: u64, quick: bool) -> Vec<Table> {
    match id {
        "e1" => e1_census(seed, quick),
        "e2" => e2_bridge_detection(seed, quick),
        "e3" => e3_shortest_paths(seed, quick),
        "e4" => e4_conversion_blowup(seed, quick),
        "e5" => e5_two_coloring(seed, quick),
        "e6" => e6_synchronizer(seed, quick),
        "e7" => e7_bfs(seed, quick),
        "e8" => e8_random_walk(seed, quick),
        "e9" => e9_milgram_traversal(seed, quick),
        "e10" => e10_greedy_tourist(seed, quick),
        "e11" => e11_election(seed, quick),
        "e12" => e12_iwa_simulations(seed, quick),
        "e13" => e13_sensitivity_ranking(seed, quick),
        "e14" => e14_tree_combination(seed, quick),
        "e15" => e15_extensions(seed, quick),
        _ => panic!("unknown experiment {id:?} (expected e1..e15)"),
    }
}

/// All experiment ids, in order.
pub const ALL: [&str; 15] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
];
