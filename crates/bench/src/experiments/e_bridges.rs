//! E2 — random-walk bridge detection (paper §2.1, Claim 2.1).
//!
//! Predictions: a non-bridge's counter first exceeds ±1 within `O(mn)`
//! expected steps (proved via the lifted 3n+1-node graph); after
//! `c·mn·ln n` steps all non-bridges are flagged with probability
//! `1 - n^{1-c}`; bridges are never flagged.

use fssga_graph::rng::Xoshiro256;
use fssga_graph::{exact, generators, Graph};
use fssga_protocols::bridges::{lifted_graph, BridgeWalk};

use crate::fit::mean;
use crate::report::{f, Table};

/// Runs E2: hitting-time measurement + end-to-end detection accuracy.
pub fn e2_bridge_detection(seed: u64, quick: bool) -> Vec<Table> {
    let mut rng = Xoshiro256::seed_from_u64(seed);

    // E2a: expected steps until a fixed non-bridge's counter exceeds +-1,
    // against the Claim 2.1 bound O(mn).
    let mut hit = Table::new(
        "E2a: steps until a non-bridge counter exceeds +-1 (Claim 2.1)",
        &["graph", "n", "m", "mean-steps", "m*n", "steps/(m*n)"],
    );
    let trials = if quick { 10 } else { 40 };
    let sizes: &[usize] = if quick { &[12, 24] } else { &[12, 24, 48, 96] };
    for &n in sizes {
        let g = generators::cycle_with_chords(n, n / 6 + 1, &mut rng);
        let e = g.edges().next().unwrap();
        let mut steps = Vec::with_capacity(trials);
        for _ in 0..trials {
            let mut w = BridgeWalk::new(&g, e.0);
            let mut count = 0u64;
            while w.counter(e.0, e.1).abs() < 2 {
                w.step(&mut rng).unwrap();
                count += 1;
                if count > 50_000_000 {
                    break;
                }
            }
            steps.push(count as f64);
        }
        let mn = (g.m() * g.n()) as f64;
        let ms = mean(&steps);
        hit.row(vec![
            "cycle+chords".into(),
            n.to_string(),
            g.m().to_string(),
            f(ms),
            f(mn),
            f(ms / mn),
        ]);
    }
    hit.note("paper: expected hitting time O(mn); the steps/(m*n) column should stay bounded");

    // E2b: end-to-end detection at the recommended step budget.
    let mut det = Table::new(
        "E2b: detection after c*m*n*ln(n) steps (c = 2)",
        &[
            "graph",
            "n",
            "true-bridges",
            "found",
            "false-pos",
            "false-neg",
        ],
    );
    let mut cases: Vec<(String, Graph)> = vec![
        ("barbell(5,3)".into(), generators::barbell(5, 3)),
        ("caterpillar(6,2)".into(), generators::caterpillar(6, 2)),
        ("petersen".into(), generators::petersen()),
    ];
    if !quick {
        for i in 0..4 {
            cases.push((
                format!("gnp-{i}"),
                generators::connected_gnp(20, 0.12, &mut rng),
            ));
        }
    }
    for (name, g) in cases {
        let truth = exact::bridges(&g);
        let mut walk = BridgeWalk::new(&g, 0);
        walk.run(BridgeWalk::recommended_steps(&g, 2.0), &mut rng);
        let found = walk.candidate_bridges();
        let false_pos = found.iter().filter(|e| !truth.contains(e)).count();
        let false_neg = truth.iter().filter(|e| !found.contains(e)).count();
        det.row(vec![
            name,
            g.n().to_string(),
            truth.len().to_string(),
            found.len().to_string(),
            false_pos.to_string(),
            false_neg.to_string(),
        ]);
    }
    det.note("paper: prob 1 - n^{1-c} that all non-bridges are identified; bridges never flagged");
    det.note("false-neg must be 0 always (deterministic invariant); false-pos 0 w.h.p.");

    // E2c: the lifted-graph construction itself.
    let mut lift = Table::new(
        "E2c: Claim 2.1 lifted graph (3n+1 nodes, 3m+1 edges)",
        &[
            "base",
            "edge-kind",
            "lifted-n",
            "lifted-m",
            "EXCEEDED reachable",
        ],
    );
    let g = generators::cycle_with_chords(10, 2, &mut rng);
    let non_bridge = g.edges().next().unwrap();
    let (lg, ex) = lifted_graph(&g, non_bridge);
    let reach =
        exact::bfs_distances(&lg, &[3 * non_bridge.0 + 1])[ex as usize] != exact::UNREACHABLE;
    lift.row(vec![
        "cycle+chords".into(),
        "non-bridge".into(),
        lg.n().to_string(),
        lg.m().to_string(),
        reach.to_string(),
    ]);
    let p = generators::path(6);
    let bridge = (2u32, 3u32);
    let (lp, exp) = lifted_graph(&p, bridge);
    let reach_b =
        exact::bfs_distances(&lp, &[3 * bridge.0 + 1])[exp as usize] != exact::UNREACHABLE;
    lift.row(vec![
        "path 6".into(),
        "bridge".into(),
        lp.n().to_string(),
        lp.m().to_string(),
        reach_b.to_string(),
    ]);
    lift.note("paper: non-bridge => lifted graph connected (hitting time applies);");
    lift.note("bridge => EXCEEDED unreachable (counter provably stays in {-1,0,1})");

    // E2d: measure the hitting time ON the lifted graph and compare with
    // the paper's explicit bound 2(3m+1)(3n) from [Motwani-Raghavan].
    let mut hitb = Table::new(
        "E2d: random-walk hitting time of EXCEEDED on the lifted graph",
        &["base n", "lifted n", "mean-steps", "2(3m+1)(3n)", "ratio"],
    );
    let trials_l = if quick { 10 } else { 30 };
    for &n in if quick {
        &[8usize, 16][..]
    } else {
        &[8usize, 16, 32][..]
    } {
        let g = generators::cycle_with_chords(n, 2, &mut rng);
        let e = g.edges().next().unwrap();
        let (lg, ex) = lifted_graph(&g, e);
        let start = 3 * e.0 + 1; // v1^0
        let mut steps = Vec::new();
        for _ in 0..trials_l {
            let mut pos = start;
            let mut count = 0u64;
            while pos != ex && count < 100_000_000 {
                let nb = lg.neighbors(pos);
                pos = nb[rng.gen_index(nb.len())];
                count += 1;
            }
            steps.push(count as f64);
        }
        let bound = 2.0 * (3.0 * g.m() as f64 + 1.0) * (3.0 * g.n() as f64);
        let ms = mean(&steps);
        hitb.row(vec![
            n.to_string(),
            lg.n().to_string(),
            f(ms),
            f(bound),
            f(ms / bound),
        ]);
    }
    hitb.note("the Claim 2.1 proof: expected hitting time <= 2(3m+1)(3n) on the lifted");
    hitb.note("graph; the measured ratio stays well below 1");

    vec![hit, det, lift, hitb]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_shape() {
        let tables = e2_bridge_detection(11, true);
        // Lifted-graph hitting time within the Motwani-Raghavan bound.
        for v in tables[3].column_f64("ratio") {
            assert!(v < 1.0, "hitting bound violated: {v}");
        }
        // Hitting times stay within a constant multiple of m*n.
        for v in tables[0].column_f64("steps/(m*n)") {
            assert!(v < 8.0, "hitting ratio {v}");
        }
        // Detection: no false negatives ever.
        for row in &tables[1].rows {
            assert_eq!(row[5], "0", "false negatives in {row:?}");
        }
        // Lifted graph: reachable for non-bridge, unreachable for bridge.
        assert_eq!(tables[2].rows[0][4], "true");
        assert_eq!(tables[2].rows[1][4], "false");
    }
}
