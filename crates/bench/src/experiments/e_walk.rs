//! E8 — the FSSGA random walk (paper §4.4, Algorithm 4.2).

use fssga_graph::generators;
use fssga_graph::rng::Xoshiro256;
use fssga_protocols::random_walk::WalkHarness;

use crate::fit::{chi_square, linear_fit, mean};
use crate::report::{f, Table};

/// Runs E8: Θ(log d) move delay + walk-law (stationary distribution).
pub fn e8_random_walk(seed: u64, quick: bool) -> Vec<Table> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut t = Table::new(
        "E8a: rounds per move at a degree-d hub (star K_{1,d})",
        &["d", "mean-rounds", "log2(d)", "rounds/log2(d)"],
    );
    let degrees: &[usize] = if quick {
        &[2, 8, 32]
    } else {
        &[2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
    };
    let trials = if quick { 50 } else { 200 };
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &d in degrees {
        let g = generators::star(d + 1);
        let mut rounds = Vec::with_capacity(trials);
        for _ in 0..trials {
            let mut h = WalkHarness::new(&g, 0);
            let run = h.run(1, 1_000_000, &mut rng);
            rounds.push(f64::from(run.rounds_per_move[0]));
        }
        let m = mean(&rounds);
        let l2 = (d as f64).log2();
        t.row(vec![d.to_string(), f(m), f(l2), f(m / l2.max(1.0))]);
        xs.push(l2);
        ys.push(m);
    }
    let (_, slope) = linear_fit(&xs, &ys);
    t.note("paper: expected Θ(log d) rounds before the walker moves off a degree-d node");
    t.note(format!(
        "measured: mean rounds ≈ {} · log2(d) + const (linear in log d, not in d)",
        f(slope)
    ));

    let mut st = Table::new(
        "E8b: long-walk visit frequencies vs the degree-proportional stationary law",
        &[
            "graph",
            "moves",
            "max |freq - deg/2m| / (deg/2m)",
            "chi2/df",
        ],
    );
    let moves = if quick { 2000 } else { 20_000 };
    for (name, g) in [
        ("lollipop(5,3)", generators::lollipop(5, 3)),
        ("wheel 9", generators::wheel(9)),
        ("cycle 12", generators::cycle(12)),
    ] {
        let mut h = WalkHarness::new(&g, 0);
        let run = h.run(moves, 200 * moves as u32, &mut rng);
        let mut visits = vec![0u64; g.n()];
        for &p in &run.positions {
            visits[p as usize] += 1;
        }
        let total_deg: usize = g.nodes().map(|v| g.degree(v)).sum();
        let samples = run.positions.len() as f64;
        let mut worst: f64 = 0.0;
        let expected: Vec<f64> = g
            .nodes()
            .map(|v| samples * g.degree(v) as f64 / total_deg as f64)
            .collect();
        for v in g.nodes() {
            let expect = expected[v as usize] / samples;
            let got = visits[v as usize] as f64 / samples;
            worst = worst.max((got - expect).abs() / expect);
        }
        let chi2 = chi_square(&visits, &expected) / (g.n() as f64 - 1.0);
        st.row(vec![
            name.into(),
            run.rounds_per_move.len().to_string(),
            f(worst),
            f(chi2),
        ]);
    }
    st.note("the tournament walk induces a uniform-neighbour random walk, whose");
    st.note("stationary distribution is proportional to degree; chi2/df stays O(1)");
    st.note("(consecutive samples are correlated, so it exceeds the iid value of ~1)");

    vec![t, st]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_shape() {
        let tables = e8_random_walk(13, true);
        // Move delay grows with log(d): the normalized column stays in a
        // narrow band while d spans 16x.
        let norm = tables[0].column_f64("rounds/log2(d)");
        let hi = norm.iter().cloned().fold(f64::MIN, f64::max);
        let lo = norm.iter().cloned().fold(f64::MAX, f64::min);
        assert!(hi / lo < 4.0, "log-law band too wide: {norm:?}");
        // Stationary law: relative error under 60% for a quick run.
        for v in tables[1].column_f64("max |freq - deg/2m| / (deg/2m)") {
            assert!(v < 0.6, "stationary deviation {v}");
        }
    }
}
