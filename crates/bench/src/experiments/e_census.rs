//! E1 — Flajolet–Martin census (paper §1).
//!
//! Predictions: the estimate `1.3 · 2^ℓ` is within a small constant
//! factor of `n`; OR-diffusion converges in diameter rounds; under
//! non-critical faults each surviving component's estimate lies between
//! `½|G'|` and `2^{O(1)}·|G₀|` ("reasonably correct", 0-sensitivity).

use fssga_engine::{Budget, Network, Runner};
use fssga_graph::rng::Xoshiro256;
use fssga_graph::{exact, generators};
use fssga_protocols::census::{averaged_estimate, union_of_fresh_sketches, Census, FmSketch};

use crate::fit::median;
use crate::report::{f, Table};

/// Runs E1: accuracy sweep + diffusion + fault tolerance.
pub fn e1_census(seed: u64, quick: bool) -> Vec<Table> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut acc = Table::new(
        "E1a: Flajolet-Martin estimate accuracy (K = 16 bits)",
        &["n", "median-est", "median-ratio", "within-2x", "within-4x"],
    );
    let sizes: &[usize] = if quick {
        &[16, 64, 256]
    } else {
        &[16, 64, 256, 1024, 4096, 16384]
    };
    let trials = if quick { 60 } else { 300 };
    for &n in sizes {
        let mut ests = Vec::with_capacity(trials);
        let mut in2 = 0;
        let mut in4 = 0;
        for _ in 0..trials {
            let est = union_of_fresh_sketches::<16>(n, &mut rng).estimate();
            let ratio = est / n as f64;
            if (0.5..=2.0).contains(&ratio) {
                in2 += 1;
            }
            if (0.25..=4.0).contains(&ratio) {
                in4 += 1;
            }
            ests.push(est);
        }
        let med = median(&ests);
        acc.row(vec![
            n.to_string(),
            f(med),
            f(med / n as f64),
            format!("{}%", 100 * in2 / trials),
            format!("{}%", 100 * in4 / trials),
        ]);
    }
    acc.note("paper: estimate correct within a factor of 2 w.h.p. (single sketch)");
    acc.note("measured: median within ~2x across three orders of magnitude");

    // Extension: PCSA-style averaging over R independent sketch fields.
    let mut avg = Table::new(
        "E1a' (extension): averaged census, R independent fields",
        &["n", "R", "median-ratio", "within-2x"],
    );
    for &n in sizes {
        for &r in &[1usize, 4, 16] {
            let mut ratios = Vec::with_capacity(trials);
            let mut in2 = 0;
            for _ in 0..trials {
                let fields: Vec<FmSketch<16>> = (0..r)
                    .map(|_| union_of_fresh_sketches::<16>(n, &mut rng))
                    .collect();
                let ratio = averaged_estimate(&fields) / n as f64;
                if (0.5..=2.0).contains(&ratio) {
                    in2 += 1;
                }
                ratios.push(ratio);
            }
            avg.row(vec![
                n.to_string(),
                r.to_string(),
                f(median(&ratios)),
                format!("{}%", 100 * in2 / trials),
            ]);
        }
    }
    avg.note("averaging (with the original FM phi-correction) drives the within-2x");
    avg.note("rate toward 100% — the variance-reduction the FM paper prescribes");

    let mut diff = Table::new(
        "E1b: OR-diffusion convergence (K = 8)",
        &["graph", "n", "diameter", "rounds", "rounds<=diam+2"],
    );
    let graphs: Vec<(&str, fssga_graph::Graph)> = vec![
        ("grid 8x8", generators::grid(8, 8)),
        ("cycle 64", generators::cycle(64)),
        ("gnp 64", generators::connected_gnp(64, 0.08, &mut rng)),
    ];
    for (name, g) in graphs {
        let sketches: Vec<FmSketch<8>> = (0..g.n())
            .map(|_| FmSketch::random_init(&mut rng))
            .collect();
        let mut net = Network::new(&g, Census::<8>, |v| sketches[v as usize]);
        let rounds = Runner::new(&mut net)
            .budget(Budget::Fixpoint(10 * g.n()))
            .run()
            .fixpoint
            .unwrap();
        let diam = exact::diameter(&g).unwrap() as usize;
        diff.row(vec![
            name.into(),
            g.n().to_string(),
            diam.to_string(),
            rounds.to_string(),
            (rounds <= diam + 2).to_string(),
        ]);
    }
    diff.note("paper: stabilizes once every node has ORed every other's bits");

    let mut fault = Table::new(
        "E1c: 0-sensitivity under partition (path 64, cut mid-run)",
        &["component", "|G'|", "estimate", "in [|G'|/2, 4|G0|]"],
    );
    let n = 64usize;
    let g = generators::path(n);
    let sketches: Vec<FmSketch<16>> = (0..n).map(|_| FmSketch::random_init(&mut rng)).collect();
    let mut net = Network::new(&g, Census::<16>, |v| sketches[v as usize]);
    let mut r2 = rng.fork();
    net.sync_step(&mut r2);
    net.remove_edge((n / 2 - 1) as u32, (n / 2) as u32);
    Runner::new(&mut net)
        .budget(Budget::Fixpoint(10 * n))
        .run()
        .fixpoint
        .unwrap();
    for (name, range) in [("left", 0..n / 2), ("right", n / 2..n)] {
        let est = net.states()[range.start].estimate();
        let sz = range.len();
        let ok = est >= sz as f64 / 2.0 && est <= 4.0 * n as f64;
        fault.row(vec![name.into(), sz.to_string(), f(est), ok.to_string()]);
    }
    fault.note("paper: components obtain estimates between |G'|/2 and 2|G0| w.h.p.");

    vec![acc, avg, diff, fault]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_shape() {
        let tables = e1_census(7, true);
        assert_eq!(tables.len(), 4);
        // Accuracy: the majority of runs land within 4x at every n.
        for v in tables[0].column_f64("within-4x") {
            assert!(v >= 50.0, "within-4x = {v}%");
        }
        // Averaging: R = 16 gets the large-n medians close to 1.
        for row in tables[1].rows.iter().filter(|r| r[1] == "16") {
            let ratio: f64 = row[2].parse().unwrap();
            assert!((0.4..=2.5).contains(&ratio), "averaged ratio {row:?}");
        }
        // Diffusion: every graph converges within diameter + 2.
        for row in &tables[2].rows {
            assert_eq!(row[4], "true");
        }
        // Fault case: both components reasonably correct.
        for row in &tables[3].rows {
            assert_eq!(row[3], "true");
        }
    }
}
