//! E13 — the sensitivity ranking (paper §1–2).
//!
//! The paper's central fault-tolerance thesis, as a measured table: run
//! six algorithms under the *same* fault process — a few random node
//! faults that spare only each algorithm's agent (at most one node) —
//! and record how often each stays "reasonably correct". Algorithms with
//! sensitivity 0 or 1 survive; algorithms whose critical set is Θ(n)
//! (the Milgram arm, the β synchronizer's tree interior) break.

use fssga_engine::{Budget, Network, Runner};
use fssga_graph::rng::Xoshiro256;
use fssga_graph::{exact, generators, DynGraph, Graph, NodeId};
use fssga_protocols::bridges::BridgeWalk;
use fssga_protocols::census::{Census, FmSketch};
use fssga_protocols::greedy_tourist::GreedyTourist;
use fssga_protocols::shortest_paths::{labels_as_distances, ShortestPaths};
use fssga_protocols::synchronizer::{alpha_network, BetaSynchronizer};
use fssga_protocols::traversal::TraversalHarness;
use fssga_protocols::two_coloring::TwoColoring;

use crate::report::Table;

/// Picks `count` victims uniformly among alive nodes, sparing `protect`,
/// and keeping the graph's protected node in a nonempty component.
fn pick_victims(
    g: &DynGraph,
    count: usize,
    protect: &[NodeId],
    rng: &mut Xoshiro256,
) -> Vec<NodeId> {
    let pool: Vec<NodeId> = g.alive_nodes().filter(|v| !protect.contains(v)).collect();
    let mut victims = Vec::new();
    let mut pool = pool;
    for _ in 0..count.min(pool.len()) {
        let i = rng.gen_index(pool.len());
        victims.push(pool.swap_remove(i));
    }
    victims
}

/// Runs E13: the survival table.
pub fn e13_sensitivity_ranking(seed: u64, quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E13: sensitivity ranking — survival under 2 random node faults",
        &[
            "algorithm",
            "claimed sensitivity",
            "trials",
            "reasonably-correct",
        ],
    );
    let trials = if quick { 8 } else { 30 };
    let faults = 2usize;
    let mk_graph = |rng: &mut Xoshiro256| -> Graph { generators::connected_gnp(24, 0.16, rng) };

    // --- Flajolet-Martin census (0-sensitive).
    let mut census_ok = 0;
    for i in 0..trials {
        let mut rng = Xoshiro256::seed_from_u64(seed + 10_000 + i as u64);
        let g = mk_graph(&mut rng);
        let n0 = g.n();
        let sketches: Vec<FmSketch<16>> =
            (0..n0).map(|_| FmSketch::random_init(&mut rng)).collect();
        let mut net = Network::new(&g, Census::<16>, |v| sketches[v as usize]);
        net.sync_step(&mut rng);
        for v in pick_victims(net.graph(), faults, &[], &mut rng) {
            net.remove_node(v);
        }
        Runner::new(&mut net)
            .budget(Budget::Fixpoint(10 * n0))
            .run()
            .fixpoint
            .unwrap();
        // Every alive node's estimate must be within the paper's window
        // for its component.
        let ok = net.graph().alive_nodes().all(|v| {
            let comp = net.graph().component_of(v).len();
            if comp <= 1 {
                return true; // isolated nodes cannot activate
            }
            let est = net.state(v).estimate();
            est >= comp as f64 / 2.0 && est <= 8.0 * n0 as f64
        });
        if ok {
            census_ok += 1;
        }
    }
    t.row(vec![
        "FM census".into(),
        "0".into(),
        trials.to_string(),
        format!("{census_ok}/{trials}"),
    ]);

    // --- Shortest paths (0-sensitive).
    let mut paths_ok = 0;
    for i in 0..trials {
        let mut rng = Xoshiro256::seed_from_u64(seed + 20_000 + i as u64);
        let g = mk_graph(&mut rng);
        let mut net = Network::new(&g, ShortestPaths::<256>, |v| {
            ShortestPaths::<256>::init(v == 0)
        });
        Runner::new(&mut net)
            .budget(Budget::Fixpoint(1024))
            .run()
            .fixpoint
            .unwrap();
        for v in pick_victims(net.graph(), faults, &[0], &mut rng) {
            net.remove_node(v);
        }
        Runner::new(&mut net)
            .budget(Budget::Fixpoint(2048))
            .run()
            .fixpoint
            .unwrap();
        let snapshot = net.graph().snapshot();
        let truth = exact::bfs_distances(&snapshot, &[0]);
        if labels_as_distances(net.states())
            .iter()
            .zip(&truth)
            .enumerate()
            .all(|(v, (a, b))| !net.graph().is_alive(v as u32) || a == b)
        {
            paths_ok += 1;
        }
    }
    t.row(vec![
        "shortest paths".into(),
        "0".into(),
        trials.to_string(),
        format!("{paths_ok}/{trials}"),
    ]);

    // --- Alpha synchronizer (0-sensitive): every alive node keeps
    // advancing after the faults.
    let mut alpha_ok = 0;
    for i in 0..trials {
        let mut rng = Xoshiro256::seed_from_u64(seed + 30_000 + i as u64);
        let g = mk_graph(&mut rng);
        let mut net = alpha_network(&g, TwoColoring, |v| TwoColoring::init(v == 0));
        for v in pick_victims(net.graph(), faults, &[], &mut rng) {
            net.remove_node(v);
        }
        let mut advances = vec![0u64; g.n()];
        let mut order: Vec<NodeId> = (0..g.n() as NodeId).collect();
        for _ in 0..10 {
            rng.shuffle(&mut order);
            for &v in &order {
                let before = net.state(v).clock;
                net.activate(v, &mut rng);
                if net.state(v).clock != before {
                    advances[v as usize] += 1;
                }
            }
        }
        let ok = net
            .graph()
            .alive_nodes()
            .all(|v| net.graph().degree(v) == 0 || advances[v as usize] >= 5);
        if ok {
            alpha_ok += 1;
        }
    }
    t.row(vec![
        "alpha synchronizer".into(),
        "0".into(),
        trials.to_string(),
        format!("{alpha_ok}/{trials}"),
    ]);

    // --- Bridge walk (1-sensitive): protect the agent; flagged edges must
    // never include a bridge of the final graph (no false positives
    // relative to any intermediate graph it walked).
    let mut bridges_ok = 0;
    for i in 0..trials {
        let mut rng = Xoshiro256::seed_from_u64(seed + 40_000 + i as u64);
        let g = mk_graph(&mut rng);
        let mut walk = BridgeWalk::new(&g, 0);
        walk.run(4_000, &mut rng);
        let protect = [walk.agent()];
        let victims = pick_victims(walk.graph_mut(), faults, &protect, &mut rng);
        for v in victims {
            walk.graph_mut().remove_node(v);
        }
        walk.run(BridgeWalk::recommended_steps(&g, 1.0), &mut rng);
        let orig_bridges = exact::bridges(&g);
        let ok = walk
            .flagged_non_bridges()
            .iter()
            .all(|e| !orig_bridges.contains(e));
        if ok {
            bridges_ok += 1;
        }
    }
    t.row(vec![
        "bridge walk".into(),
        "1".into(),
        trials.to_string(),
        format!("{bridges_ok}/{trials}"),
    ]);

    // --- Greedy tourist (1-sensitive): protect the agent.
    let mut tourist_ok = 0;
    for i in 0..trials {
        let mut rng = Xoshiro256::seed_from_u64(seed + 50_000 + i as u64);
        let g = mk_graph(&mut rng);
        let mut tour = GreedyTourist::new(&g, 0);
        let _ = tour.run(50, &mut rng);
        let protect = [tour.agent()];
        let victims = pick_victims(tour.network_mut().graph(), faults, &protect, &mut rng);
        for v in victims {
            tour.network_mut().remove_node(v);
        }
        let run = tour.run(50_000_000, &mut rng);
        if run.complete {
            tourist_ok += 1;
        }
    }
    t.row(vec![
        "greedy tourist".into(),
        "1".into(),
        trials.to_string(),
        format!("{tourist_ok}/{trials}"),
    ]);

    // --- Milgram traversal (Θ(n)-sensitive): protect only the hand. The
    // critical set is the whole arm, which on these graphs grows to a
    // constant fraction of the nodes — random non-hand faults hit it.
    let mut milgram_ok = 0;
    for i in 0..trials {
        let mut rng = Xoshiro256::seed_from_u64(seed + 60_000 + i as u64);
        let g = mk_graph(&mut rng);
        let mut h = TraversalHarness::new(&g, 0);
        // Let the arm grow before injecting (the paper's χ(σ) is read at
        // fault time; we fault at the first instant the arm has interior
        // nodes — its typical mid-run shape).
        let mut guard = 0;
        while h.arm_path_nodes().len() < (g.n() / 4).max(4) && guard < 400 {
            let _ = h.run(10, &mut rng, false);
            guard += 1;
        }
        let hand: Vec<NodeId> = h
            .arm_path_nodes()
            .iter()
            .copied()
            .filter(|&v| h.network_mut().state(v).is_hand())
            .collect();
        let victims = pick_victims(h.network_mut().graph(), faults, &hand, &mut rng);
        for v in victims {
            h.network_mut().remove_node(v);
        }
        let run = h.run(2_000_000, &mut rng, false);
        let ok = !run.corrupted
            && run.complete
            && (0..g.n()).all(|v| !h.network_mut().graph().is_alive(v as u32) || run.visited[v]);
        if ok {
            milgram_ok += 1;
        }
    }
    t.row(vec![
        "Milgram traversal".into(),
        "Θ(n)".into(),
        trials.to_string(),
        format!("{milgram_ok}/{trials}"),
    ]);

    // --- Beta synchronizer (Θ(n)-sensitive): protect only the root.
    let mut beta_ok = 0;
    for i in 0..trials {
        let mut rng = Xoshiro256::seed_from_u64(seed + 70_000 + i as u64);
        let g = mk_graph(&mut rng);
        let mut beta = BetaSynchronizer::new(&g, 0);
        let mut dg = DynGraph::from_graph(&g);
        for v in pick_victims(&dg, faults, &[0], &mut rng) {
            dg.remove_node(v);
        }
        let sync = beta.pulse(&dg);
        if sync.len() == dg.n_alive() {
            beta_ok += 1;
        }
    }
    t.row(vec![
        "beta synchronizer".into(),
        "Θ(n)".into(),
        trials.to_string(),
        format!("{beta_ok}/{trials}"),
    ]);

    t.note("paper §2: decentralized algorithms (sensitivity 0) > agents (1) > tree-based (Θ(n));");
    t.note("the survival column reproduces exactly that ranking under one fault process");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frac(s: &str) -> f64 {
        let p: Vec<&str> = s.split('/').collect();
        p[0].parse::<f64>().unwrap() / p[1].parse::<f64>().unwrap()
    }

    #[test]
    fn e13_shape() {
        let tables = e13_sensitivity_ranking(31, true);
        let rows = &tables[0].rows;
        let get =
            |name: &str| -> f64 { frac(&rows.iter().find(|r| r[0].starts_with(name)).unwrap()[3]) };
        // Low-sensitivity algorithms survive essentially always.
        assert!(get("FM census") >= 0.9);
        assert!(get("shortest paths") >= 0.9);
        assert!(get("alpha") >= 0.9);
        assert!(get("bridge walk") >= 0.9);
        assert!(get("greedy tourist") >= 0.9);
        // Θ(n)-sensitivity shows: strictly worse than the robust group.
        assert!(get("Milgram") < 0.9, "arm faults must hurt");
        assert!(get("beta") < 0.9, "tree faults must hurt");
    }
}
