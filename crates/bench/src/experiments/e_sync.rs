//! E6 — the α synchronizer (paper §4.2).

use fssga_engine::{Network, Protocol};
use fssga_graph::rng::Xoshiro256;
use fssga_graph::{generators, DynGraph, Graph, NodeId};
use fssga_protocols::shortest_paths::{labels_as_distances, ShortestPaths};
use fssga_protocols::synchronizer::{alpha_network, Alpha, BetaSynchronizer};
use fssga_protocols::two_coloring::TwoColoring;

use crate::report::{f, Table};

/// Sweep-runs an α-wrapped protocol and reports (min advances, skew
/// violations).
fn sweep_alpha<P: Protocol>(
    g: &Graph,
    protocol: P,
    init: impl Fn(NodeId) -> P::State,
    sweeps: usize,
    rng: &mut Xoshiro256,
) -> (u64, usize) {
    let mut net = alpha_network(g, protocol, &init);
    let n = g.n();
    let mut advances = vec![0u64; n];
    let mut violations = 0usize;
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    for _ in 0..sweeps {
        rng.shuffle(&mut order);
        for &v in &order {
            let before = net.state(v).clock;
            net.activate(v, rng);
            if net.state(v).clock != before {
                advances[v as usize] += 1;
            }
        }
        for (u, v) in g.edges() {
            if (advances[u as usize] as i64 - advances[v as usize] as i64).abs() > 1 {
                violations += 1;
            }
        }
    }
    (advances.iter().copied().min().unwrap(), violations)
}

/// Runs E6: clock-rate guarantee, skew invariant, async==sync results,
/// and the β-baseline fragility contrast.
pub fn e6_synchronizer(seed: u64, quick: bool) -> Vec<Table> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let sweeps = if quick { 15 } else { 60 };
    let mut t = Table::new(
        "E6a: alpha synchronizer — k sweeps give >= k clock advances",
        &["graph", "n", "sweeps", "min-advances", "skew-violations"],
    );
    let graphs: Vec<(&str, Graph)> = vec![
        ("path 40", generators::path(40)),
        ("grid 7x7", generators::grid(7, 7)),
        ("gnp 60", generators::connected_gnp(60, 0.07, &mut rng)),
        ("star 40", generators::star(40)),
    ];
    for (name, g) in &graphs {
        let (min_adv, violations) = sweep_alpha(
            g,
            TwoColoring,
            |v| TwoColoring::init(v == 0),
            sweeps,
            &mut rng,
        );
        t.row(vec![
            (*name).into(),
            g.n().to_string(),
            sweeps.to_string(),
            min_adv.to_string(),
            violations.to_string(),
        ]);
    }
    t.note("paper: in k units of time each node advances >= k times; adjacent clocks differ <= 1");

    let mut sim = Table::new(
        "E6b: async simulation computes the synchronous answer",
        &["protocol", "graph", "answer-matches-sync"],
    );
    for (name, g) in &graphs {
        let mut net = alpha_network(g, ShortestPaths::<256>, |v| {
            ShortestPaths::<256>::init(v == 0)
        });
        let mut r2 = rng.fork();
        let mut order: Vec<NodeId> = (0..g.n() as NodeId).collect();
        for _ in 0..(6 * g.n().max(260)) {
            r2.shuffle(&mut order);
            for &v in &order {
                net.activate(v, &mut r2);
            }
        }
        let labels: Vec<_> = net.states().iter().map(|s| s.cur).collect();
        let truth = fssga_graph::exact::bfs_distances(g, &[0]);
        sim.row(vec![
            "shortest-paths".into(),
            (*name).into(),
            (labels_as_distances(&labels) == truth).to_string(),
        ]);
    }
    sim.note("the alpha transform makes any synchronous FSSGA protocol run asynchronously");

    let mut frag = Table::new(
        "E6c: alpha (sensitivity 0) vs beta synchronizer (sensitivity Θ(n))",
        &[
            "graph",
            "killed",
            "beta-survivors",
            "alpha-survivors",
            "alive-nodes",
        ],
    );
    for (name, g) in &graphs {
        let victim = (g.n() / 2) as NodeId;
        // Beta: pulse survivors after the fault.
        let mut beta = BetaSynchronizer::new(g, 0);
        let mut dg = DynGraph::from_graph(g);
        dg.remove_node(victim);
        let beta_alive = beta.pulse(&dg).len();
        // Alpha: nodes still advancing after the fault.
        let mut net: Network<Alpha<TwoColoring>> =
            alpha_network(g, TwoColoring, |v| TwoColoring::init(v == 0));
        net.remove_node(victim);
        let mut advances = vec![0u64; g.n()];
        let mut order: Vec<NodeId> = (0..g.n() as NodeId).collect();
        for _ in 0..10 {
            rng.shuffle(&mut order);
            for &v in &order {
                let before = net.state(v).clock;
                net.activate(v, &mut rng);
                if net.state(v).clock != before {
                    advances[v as usize] += 1;
                }
            }
        }
        let alpha_alive = (0..g.n())
            .filter(|&v| v != victim as usize && advances[v] >= 5)
            .count();
        frag.row(vec![
            (*name).into(),
            f(victim as f64),
            beta_alive.to_string(),
            alpha_alive.to_string(),
            (g.n() - 1).to_string(),
        ]);
    }
    frag.note("paper intro: tree-based synchronizers fail below a dead tree node;");
    frag.note("the alpha synchronizer keeps every surviving node advancing");

    vec![t, sim, frag]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_shape() {
        let tables = e6_synchronizer(9, true);
        for row in &tables[0].rows {
            let sweeps: u64 = row[2].parse().unwrap();
            let min_adv: u64 = row[3].parse().unwrap();
            assert!(min_adv >= sweeps, "advance rate: {row:?}");
            assert_eq!(row[4], "0", "skew violations: {row:?}");
        }
        for row in &tables[1].rows {
            assert_eq!(row[2], "true", "async simulation: {row:?}");
        }
        for row in &tables[2].rows {
            let beta: usize = row[2].parse().unwrap();
            let alpha: usize = row[3].parse().unwrap();
            let alive: usize = row[4].parse().unwrap();
            assert_eq!(alpha, alive, "alpha keeps everyone alive: {row:?}");
            assert!(beta <= alpha, "beta never beats alpha: {row:?}");
        }
    }
}
