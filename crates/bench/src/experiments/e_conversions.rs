//! E4 — Theorem 3.7 conversions and their blow-up, and
//! E14 — Figure 1, the tree-combination process.

use fssga_core::convert::{
    mt_to_par, mt_to_par_cost, par_to_seq, seq_to_mt, seq_to_mt_cost, DEFAULT_LIMIT,
};
use fssga_core::equiv::decide_equiv_seq;
use fssga_core::tree::permutations;
use fssga_core::{library, CombTree, SeqProgram};

use crate::report::Table;

/// Runs E4: per-program conversion sizes + verified equivalence.
pub fn e4_conversion_blowup(_seed: u64, quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E4a: Theorem 3.7 conversion sizes (seq -> mod-thresh -> parallel)",
        &[
            "program",
            "|Q|",
            "|W|seq",
            "mt-clauses",
            "mt-atoms",
            "|W|par",
            "equiv-verified",
        ],
    );
    let programs: Vec<(String, SeqProgram)> = vec![
        ("OR".into(), library::or_seq()),
        ("AND".into(), library::and_seq()),
        ("parity".into(), library::parity_seq()),
        ("count-ones mod 3".into(), library::count_ones_mod_seq(3)),
        ("count-ones mod 5".into(), library::count_ones_mod_seq(5)),
        ("max of 3 states".into(), library::max_state_seq(3)),
        ("min of 3 states".into(), library::min_state_seq(3)),
        ("threshold >=3".into(), library::count_at_least_seq(2, 1, 3)),
        ("all-equal (3)".into(), library::all_equal_seq(3)),
    ];
    for (name, seq) in &programs {
        let mt = seq_to_mt(seq, DEFAULT_LIMIT).expect("library programs are SM");
        let par = mt_to_par(&mt, DEFAULT_LIMIT).expect("within limit");
        let back = par_to_seq(&par);
        let equiv = decide_equiv_seq(seq, &back, 1 << 24)
            .map(|ce| ce.is_none())
            .unwrap_or(false);
        t.row(vec![
            name.clone(),
            seq.num_inputs().to_string(),
            seq.num_working().to_string(),
            mt.num_clauses().to_string(),
            mt.atom_count().to_string(),
            par.num_working().to_string(),
            equiv.to_string(),
        ]);
    }
    t.note("paper: the three classes coincide (Theorem 3.7); conversions verified");
    t.note("exactly by the sequential-program equivalence decision procedure");

    // E4b: blow-up scaling — the paper notes "an exponential increase in
    // program complexity" is possible.
    let mut blow = Table::new(
        "E4b: conversion cost growth for count-ones mod k",
        &["k", "|W|seq", "seq->mt clauses", "mt->par |W|"],
    );
    let ks: &[usize] = if quick {
        &[2, 4, 8]
    } else {
        &[2, 4, 8, 16, 32, 64]
    };
    for &k in ks {
        let seq = library::count_ones_mod_seq(k);
        let clauses = seq_to_mt_cost(&seq);
        let mt = seq_to_mt(&seq, 1 << 24).unwrap();
        let par_w = mt_to_par_cost(&mt);
        blow.row(vec![
            k.to_string(),
            seq.num_working().to_string(),
            clauses.to_string(),
            par_w.to_string(),
        ]);
    }
    blow.note("mod-counters keep the blow-up linear; product alphabets (e.g. the 48-state");
    blow.note("BFS automaton) make the mt clause count exponential: 2^48 count classes");

    // Extension: the inverse direction — Moore minimization and exact
    // clause simplification recover compact programs from blown-up ones.
    let mut shrink = Table::new(
        "E4c (extension): minimization undoes the conversion blow-up",
        &[
            "program",
            "|W| blown up",
            "|W| minimized",
            "mt clauses",
            "simplified",
        ],
    );
    for (name, seq) in &programs {
        let mt = seq_to_mt(seq, DEFAULT_LIMIT).unwrap();
        let par = mt_to_par(&mt, DEFAULT_LIMIT).unwrap();
        let big = par_to_seq(&par);
        let small = big.minimized();
        let slim = mt.simplified(1 << 20).unwrap();
        shrink.row(vec![
            name.clone(),
            big.num_working().to_string(),
            small.num_working().to_string(),
            mt.num_clauses().to_string(),
            slim.num_clauses().to_string(),
        ]);
    }
    shrink.note("Moore minimization recovers (at most) the original working-state count;");
    shrink.note("clause liveness is decided exactly over the finite class space");

    vec![t, blow, shrink]
}

/// Runs E14: Figure 1 — the parallel combination tree, rendered, plus the
/// tree/permutation-invariance sweep.
pub fn e14_tree_combination(_seed: u64, quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E14: tree-combination invariance (Definition 3.4 / Figure 1)",
        &[
            "k",
            "trees",
            "perms",
            "all-agree(sum mod 3)",
            "non-SM counterexample",
        ],
    );
    let par = library::sum_mod_par(3);
    // A non-SM combine (subtraction-like) for contrast.
    let keep_left = fssga_core::ParProgram::from_fn(3, 3, 3, |q| q, |a, _| a, |w| w).unwrap();
    let kmax = if quick { 5 } else { 7 };
    for k in 2..=kmax {
        let trees = CombTree::enumerate_all(k);
        let perms = permutations(k);
        let inputs: Vec<usize> = (0..k).map(|i| i % 3).collect();
        let mut results = std::collections::HashSet::new();
        let mut bad_results = std::collections::HashSet::new();
        for tree in &trees {
            for p in &perms {
                let permuted: Vec<usize> = p.iter().map(|&i| inputs[i]).collect();
                results.insert(par.eval_with_tree(tree, &permuted));
                bad_results.insert(keep_left.eval_with_tree(tree, &permuted));
            }
        }
        t.row(vec![
            k.to_string(),
            trees.len().to_string(),
            perms.len().to_string(),
            (results.len() == 1).to_string(),
            (bad_results.len() > 1).to_string(),
        ]);
    }
    t.note("paper Figure 1: the parallel process combines leaf data pairwise over any tree;");
    t.note("for an SM program the output is invariant over all trees x permutations");

    // The rendered figure itself.
    let mut fig = Table::new(
        "E14b: Figure 1 rendering (sum mod 3 over 5 inputs)",
        &["tree"],
    );
    let tree = CombTree::balanced(5);
    let alpha = [1usize, 2, 0, 1, 2];
    let mut p = |a: usize, b: usize| (a + b) % 3;
    let mut show = |v: usize| v.to_string();
    for line in tree.render_evaluated(&alpha, &mut p, &mut show).lines() {
        fig.row(vec![line.to_string()]);
    }
    vec![t, fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_shape() {
        let tables = e4_conversion_blowup(0, true);
        for row in &tables[0].rows {
            assert_eq!(row[6], "true", "equivalence failed: {row:?}");
        }
        // Blow-up table: clause count strictly increasing in k.
        let clauses = tables[1].column_f64("seq->mt clauses");
        assert!(clauses.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn e14_shape() {
        let tables = e14_tree_combination(0, true);
        for row in &tables[0].rows {
            assert_eq!(row[3], "true", "SM program must agree: {row:?}");
            assert_eq!(row[4], "true", "keep-left must disagree: {row:?}");
        }
        assert!(tables[1].rows.len() >= 5, "figure has multiple lines");
    }

    #[test]
    fn multiset_spot_check_of_equivalence_tables() {
        use fssga_core::multiset::Multiset;
        // Belt-and-suspenders: cross-check one conversion numerically.
        let seq = library::count_ones_mod_seq(4);
        let mt = seq_to_mt(&seq, DEFAULT_LIMIT).unwrap();
        for ms in Multiset::enumerate_up_to(2, 9) {
            assert_eq!(seq.eval_multiset(&ms), mt.eval_multiset(&ms));
        }
    }
}
