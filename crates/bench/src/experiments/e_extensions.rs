//! E15 — beyond the paper: the §5/§5.2 discussion topics made executable.
//!
//! Three pieces the paper raises but does not resolve, measured:
//! the firing squad on paths (open for general graphs, solved here for
//! the path case inside the model), the "are mod atoms ever necessary?"
//! question (decided per function), and the sequential-vs-parallel
//! working-memory question for uniform tape families.

use fssga_core::library;
use fssga_core::modfree::mod_atoms_essential;
use fssga_core::tape::example_families;
use fssga_protocols::firing_squad::{run_on_path, run_oriented};

use crate::report::Table;

/// Runs E15: firing squad + mod-atom decisions + tape-family bits.
pub fn e15_extensions(_seed: u64, quick: bool) -> Vec<Table> {
    let mut fs = Table::new(
        "E15a: firing squad on paths (open problem §5.2, path case solved in-model)",
        &[
            "n",
            "oriented-CA fires at",
            "FSSGA fires at",
            "time/n",
            "simultaneous",
        ],
    );
    let sizes: &[usize] = if quick {
        &[4, 8, 16, 32]
    } else {
        &[4, 8, 16, 32, 64, 128]
    };
    for &n in sizes {
        let ca = run_oriented(n, 30 * n + 60);
        let net = run_on_path(n, 40 * n + 80);
        let simultaneous = ca.is_some() && net.is_some();
        fs.row(vec![
            n.to_string(),
            ca.map(|t| t.to_string()).unwrap_or_else(|| "FAIL".into()),
            net.map(|t| t.to_string()).unwrap_or_else(|| "FAIL".into()),
            net.map(|t| format!("{:.2}", t as f64 / n as f64))
                .unwrap_or_default(),
            simultaneous.to_string(),
        ]);
    }
    fs.note("every node fires in the SAME round (verified; partial firing would be FAIL);");
    fs.note("time is ~3n: two-speed divide and conquer over mod-3-label orientation");

    let mut ma = Table::new(
        "E15b: are mod atoms essential? (the paper's closing question, decided)",
        &["function", "mod atoms essential"],
    );
    let progs: Vec<(&str, fssga_core::SeqProgram)> = vec![
        ("OR", library::or_seq()),
        ("AND", library::and_seq()),
        ("parity", library::parity_seq()),
        ("count-ones mod 3", library::count_ones_mod_seq(3)),
        ("at-least-3 ones", library::count_at_least_seq(2, 1, 3)),
        ("max of 4 states", library::max_state_seq(4)),
        ("all-equal (3)", library::all_equal_seq(3)),
    ];
    for (name, seq) in progs {
        let essential = mod_atoms_essential(&seq, 1 << 20).unwrap().is_some();
        ma.row(vec![name.into(), essential.to_string()]);
    }
    ma.note("threshold-only rewrites exist exactly for the eventually-constant functions;");
    ma.note("parity/mod counters are the (only) witnesses that mod atoms add power");

    let mut tp = Table::new(
        "E15c: tape families — sequential vs parallel working bits (§5 question)",
        &[
            "family",
            "N",
            "w(N) seq bits",
            "generic par bound",
            "best par bits",
        ],
    );
    for fam in example_families() {
        for &n in &[4usize, 8, 16] {
            tp.row(vec![
                fam.name.into(),
                n.to_string(),
                fam.seq_bits(n).to_string(),
                fam.generic_bound_bits(n).to_string(),
                fam.best_par_bits(n)
                    .map(|b| b.to_string())
                    .unwrap_or_default(),
            ]);
        }
    }
    tp.note("the generic Lemma 3.8 construction costs O(2^q(N) w(N)) bits, but every");
    tp.note("example family admits a direct parallel program with w'(N) = O(w(N)) —");
    tp.note("consistent with the paper's conjecture that sequential never separates");

    vec![fs, ma, tp]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_shape() {
        let tables = e15_extensions(0, true);
        for row in &tables[0].rows {
            assert_eq!(row[4], "true", "firing must be simultaneous: {row:?}");
        }
        // Parity needs mod atoms; OR does not.
        let find = |name: &str| tables[1].rows.iter().find(|r| r[0] == name).unwrap()[1].clone();
        assert_eq!(find("parity"), "true");
        assert_eq!(find("OR"), "false");
        // Best parallel bits never exceed 2x sequential bits + 2.
        for row in &tables[2].rows {
            let ws: f64 = row[2].parse().unwrap();
            let wp: f64 = row[4].parse().unwrap();
            assert!(wp <= 2.0 * ws.max(1.0) + 2.0, "{row:?}");
        }
    }
}
