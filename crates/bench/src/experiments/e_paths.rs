//! E3 — decentralized shortest paths (paper §2.2) and
//! E7 — breadth-first search (paper §4.3).

use fssga_engine::{Budget, Network, Runner};
use fssga_graph::rng::Xoshiro256;
use fssga_graph::{exact, generators};
use fssga_protocols::bfs::{run_bfs, Status};
use fssga_protocols::shortest_paths::{labels_as_distances, ShortestPaths};

use crate::report::Table;

/// Runs E3: convergence-in-d-rounds + exactness + fault recovery.
pub fn e3_shortest_paths(seed: u64, quick: bool) -> Vec<Table> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut t = Table::new(
        "E3: shortest-path labelling (cap 256)",
        &[
            "graph",
            "n",
            "max-dist",
            "rounds",
            "rounds<=d+1",
            "labels-exact",
        ],
    );
    const CAP: usize = 256;
    let mut cases: Vec<(String, fssga_graph::Graph, Vec<u32>)> = vec![
        ("path 100".into(), generators::path(100), vec![0]),
        ("grid 10x10".into(), generators::grid(10, 10), vec![0]),
        (
            "grid 10x10 3-sinks".into(),
            generators::grid(10, 10),
            vec![0, 55, 99],
        ),
    ];
    if !quick {
        for i in 0..4 {
            cases.push((
                format!("gnp-{i} 120"),
                generators::connected_gnp(120, 0.04, &mut rng),
                vec![i as u32 * 17],
            ));
        }
    }
    for (name, g, sinks) in cases {
        let mut net = Network::new(&g, ShortestPaths::<CAP>, |v| {
            ShortestPaths::<CAP>::init(sinks.contains(&v))
        });
        let rounds = Runner::new(&mut net)
            .budget(Budget::Fixpoint(4 * CAP))
            .run()
            .fixpoint
            .unwrap();
        let truth = exact::bfs_distances(&g, &sinks);
        let maxd = *truth.iter().max().unwrap() as usize;
        let exactness = labels_as_distances(net.states()) == truth;
        t.row(vec![
            name,
            g.n().to_string(),
            maxd.to_string(),
            rounds.to_string(),
            (rounds <= maxd + 1).to_string(),
            exactness.to_string(),
        ]);
    }
    t.note("paper: a node at distance d stabilizes at d within d rounds (plus 1 quiescent)");

    let mut rec = Table::new(
        "E3b: 0-sensitive re-convergence after faults (grid 8x8)",
        &["faults", "re-rounds", "labels-exact-after"],
    );
    let g = generators::grid(8, 8);
    let mut net = Network::new(&g, ShortestPaths::<CAP>, |v| {
        ShortestPaths::<CAP>::init(v == 0)
    });
    Runner::new(&mut net)
        .budget(Budget::Fixpoint(4 * CAP))
        .run()
        .fixpoint
        .unwrap();
    for wave in 1..=3 {
        for _ in 0..3 {
            let edges: Vec<_> = net.graph().edges().collect();
            let &(u, v) = rng.choose(&edges);
            // Keep the sink connected so re-convergence is meaningful.
            let mut probe = net.graph().clone();
            probe.remove_edge(u, v);
            if probe.component_of(0).len() == probe.n_alive() {
                net.remove_edge(u, v);
            }
        }
        let rounds = Runner::new(&mut net)
            .budget(Budget::Fixpoint(8 * CAP))
            .run()
            .fixpoint
            .unwrap();
        let snapshot = net.graph().snapshot();
        let truth = exact::bfs_distances(&snapshot, &[0]);
        rec.row(vec![
            format!("wave {wave}"),
            rounds.to_string(),
            (labels_as_distances(net.states()) == truth).to_string(),
        ]);
    }
    rec.note("paper: 0-sensitive — labels re-converge on whatever stays connected");

    vec![t, rec]
}

/// Runs E7: BFS labels, verdicts, and the 2d found-latency bound.
pub fn e7_bfs(seed: u64, quick: bool) -> Vec<Table> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut t = Table::new(
        "E7: FSSGA breadth-first search (Algorithm 4.1)",
        &[
            "graph",
            "n",
            "dist(org,target)",
            "verdict",
            "rounds",
            "labels=dist%3",
        ],
    );
    let trials = if quick { 4 } else { 12 };
    for i in 0..trials {
        let g = generators::connected_gnp(40, 0.07, &mut rng);
        let target = (g.n() - 1) as u32;
        let d = exact::bfs_distances(&g, &[0])[target as usize];
        let (status, rounds, states) = run_bfs(&g, 0, &[target], 20 * g.n()).expect("stabilizes");
        let truth = exact::bfs_distances(&g, &[0]);
        let labels_ok = g
            .nodes()
            .all(|v| states[v as usize].label.residue() == Some(truth[v as usize] % 3));
        t.row(vec![
            format!("gnp-{i}"),
            g.n().to_string(),
            d.to_string(),
            format!("{status:?}"),
            rounds.to_string(),
            labels_ok.to_string(),
        ]);
        assert_eq!(status, Status::Found);
    }
    // A no-target case.
    let g = generators::grid(6, 6);
    let (status, rounds, _) = run_bfs(&g, 0, &[], 30 * g.n()).unwrap();
    t.row(vec![
        "grid 6x6 (no target)".into(),
        g.n().to_string(),
        "-".into(),
        format!("{status:?}"),
        rounds.to_string(),
        "true".into(),
    ]);
    t.note("paper: labels are distance mod 3; found-status reaches the originator ~2d rounds");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_shape() {
        let tables = e3_shortest_paths(3, true);
        for row in &tables[0].rows {
            assert_eq!(row[4], "true", "convergence bound: {row:?}");
            assert_eq!(row[5], "true", "exactness: {row:?}");
        }
        for row in &tables[1].rows {
            assert_eq!(row[2], "true", "fault recovery: {row:?}");
        }
    }

    #[test]
    fn e7_shape() {
        let tables = e7_bfs(3, true);
        let last = tables[0].rows.last().unwrap();
        assert_eq!(last[3], "Failed", "no-target case must report Failed");
        for row in &tables[0].rows {
            assert_eq!(row[5], "true", "label correctness: {row:?}");
        }
    }
}
