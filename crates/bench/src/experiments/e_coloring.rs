//! E5 — 2-colouring / bipartiteness (paper §4.1).

use fssga_engine::{Budget, Network, Runner};
use fssga_graph::rng::Xoshiro256;
use fssga_graph::{exact, generators};
use fssga_protocols::two_coloring::{outcome, ColoringOutcome, TwoColoring};

use crate::report::Table;

/// Runs E5: verdict accuracy + stabilization-in-O(diam) rounds.
pub fn e5_two_coloring(seed: u64, quick: bool) -> Vec<Table> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut t = Table::new(
        "E5: two-colouring verdicts and stabilization",
        &["family", "trials", "correct", "max-rounds", "max-diam"],
    );
    let trials = if quick { 8 } else { 30 };
    type Gen<'a> = Box<dyn FnMut(&mut Xoshiro256) -> (fssga_graph::Graph, bool) + 'a>;
    let families: Vec<(&str, Gen)> = vec![
        (
            "bipartite gnp",
            Box::new(|r: &mut Xoshiro256| (generators::random_bipartite(8, 10, 0.25, r), true)),
        ),
        (
            "odd-cycle planted",
            Box::new(|r: &mut Xoshiro256| {
                (generators::bipartite_plus_odd_cycle(8, 10, 0.25, r), false)
            }),
        ),
        (
            "even cycles",
            Box::new(|r: &mut Xoshiro256| {
                let n = 6 + 2 * r.gen_index(10);
                (generators::cycle(n), true)
            }),
        ),
        (
            "odd cycles",
            Box::new(|r: &mut Xoshiro256| {
                let n = 7 + 2 * r.gen_index(10);
                (generators::cycle(n), false)
            }),
        ),
        (
            "grids",
            Box::new(|r: &mut Xoshiro256| {
                (
                    generators::grid(3 + r.gen_index(4), 3 + r.gen_index(4)),
                    true,
                )
            }),
        ),
    ];
    for (name, mut gen) in families {
        let mut correct = 0;
        let mut max_rounds = 0usize;
        let mut max_diam = 0usize;
        for _ in 0..trials {
            let (g, expect_bipartite) = gen(&mut rng);
            debug_assert_eq!(exact::bipartition(&g).is_some(), expect_bipartite);
            let mut net = Network::new(&g, TwoColoring, |v| TwoColoring::init(v == 0));
            let rounds = Runner::new(&mut net)
                .budget(Budget::Fixpoint(8 * g.n() + 20))
                .run()
                .fixpoint
                .expect("stabilizes");
            let got = outcome(net.states());
            let ok = if expect_bipartite {
                got == ColoringOutcome::ProperColoring
            } else {
                got == ColoringOutcome::OddCycleDetected
            };
            if ok {
                correct += 1;
            }
            max_rounds = max_rounds.max(rounds);
            max_diam = max_diam.max(exact::diameter(&g).unwrap() as usize);
        }
        t.row(vec![
            name.into(),
            trials.to_string(),
            format!("{correct}/{trials}"),
            max_rounds.to_string(),
            max_diam.to_string(),
        ]);
    }
    t.note("paper: bipartite => proper colouring, odd cycle => FAILED floods;");
    t.note("colour fronts move one hop per round, so rounds track the diameter");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_shape() {
        let tables = e5_two_coloring(5, true);
        for row in &tables[0].rows {
            let parts: Vec<&str> = row[2].split('/').collect();
            assert_eq!(parts[0], parts[1], "all verdicts correct: {row:?}");
        }
    }
}
