//! E12 — the FSSGA ↔ IWA simulations (paper §5.1).

use fssga_core::modthresh::{ModThreshProgram, Prop};
use fssga_core::{FsmProgram, Fssga, ProbFssga};
use fssga_graph::generators;
use fssga_graph::rng::Xoshiro256;
use fssga_iwa::fssga_on_iwa::FssgaOnIwa;
use fssga_iwa::iwa_on_fssga::IwaFssgaHarness;
use fssga_iwa::machine::{Guard, Iwa, IwaRule};

use crate::fit::mean;
use crate::report::{f, Table};

fn infection() -> ProbFssga {
    let catch = ModThreshProgram::new(2, 2, vec![(Prop::some(1), 1)], 0).unwrap();
    let keep = ModThreshProgram::new(2, 2, vec![], 1).unwrap();
    ProbFssga::from_deterministic(
        Fssga::new(
            2,
            vec![FsmProgram::ModThresh(catch), FsmProgram::ModThresh(keep)],
        )
        .unwrap(),
    )
}

/// Runs E12: Θ(m) moves per simulated FSSGA round, and O(log Δ) rounds
/// per simulated IWA step.
pub fn e12_iwa_simulations(seed: u64, quick: bool) -> Vec<Table> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut fwd = Table::new(
        "E12a: FSSGA round on an IWA — agent moves per round vs m",
        &["graph", "n", "m", "moves/round", "moves/m", "lockstep-ok"],
    );
    let auto = infection();
    let graphs: Vec<(String, fssga_graph::Graph)> = if quick {
        vec![
            ("cycle 40".into(), generators::cycle(40)),
            ("grid 6x6".into(), generators::grid(6, 6)),
        ]
    } else {
        vec![
            ("cycle 40".into(), generators::cycle(40)),
            ("grid 8x8".into(), generators::grid(8, 8)),
            ("complete 16".into(), generators::complete(16)),
            (
                "gnp 60".into(),
                generators::connected_gnp(60, 0.08, &mut rng),
            ),
            ("star 60".into(), generators::star(60)),
        ]
    };
    for (name, g) in graphs {
        let mut sim = FssgaOnIwa::new(&auto, &g, |v| usize::from(v == 0));
        let mut net = fssga_engine::interp::InterpNetwork::new(&g, &auto, |v| usize::from(v == 0));
        let rounds = 5;
        let mut per_round = Vec::new();
        let mut ok = true;
        for r in 0..rounds {
            per_round.push(sim.sync_round(r) as f64);
            net.sync_step_seeded(r);
            ok &= sim.states() == net.states();
        }
        let mpr = mean(&per_round);
        fwd.row(vec![
            name,
            g.n().to_string(),
            g.m().to_string(),
            f(mpr),
            f(mpr / g.m() as f64),
            ok.to_string(),
        ]);
    }
    fwd.note("paper: an IWA computes a synchronous FSSGA round in O(m) time;");
    fwd.note("the moves/m column is the constant (8 counting + O(n/m) walking)");

    let mut back = Table::new(
        "E12b: IWA step on an FSSGA — rounds per move vs log2(d)",
        &["d (candidates)", "mean-rounds/step", "log2(d)", "ratio"],
    );
    // An IWA that hops to a label-0 neighbour forever (relabelling its
    // position keeps it wandering).
    let hopper = Iwa {
        num_states: 1,
        num_labels: 2,
        rules: vec![IwaRule {
            state: 0,
            guard: Guard::Always,
            relabel: 1,
            move_to: Some(0),
            next_state: 0,
        }],
    };
    let degrees: &[usize] = if quick {
        &[2, 16]
    } else {
        &[2, 4, 16, 64, 256]
    };
    let trials = if quick { 30 } else { 100 };
    for &d in degrees {
        let g = generators::star(d + 1);
        let mut rounds = Vec::new();
        for _ in 0..trials {
            let mut h = IwaFssgaHarness::<2, 1, 1>::new(hopper.clone(), &g, 0, |_| 0);
            let steps = h.run(1, 1_000_000, &mut rng);
            rounds.push(f64::from(steps[0].1));
        }
        let m = mean(&rounds);
        let l = (d as f64).log2().max(1.0);
        back.row(vec![d.to_string(), f(m), f(l), f(m / l)]);
    }
    back.note("paper: an FSSGA network simulates an IWA with O(log Δ) delay —");
    back.note("the symmetry-breaking tournament to pick the agent's destination");

    vec![fwd, back]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_shape() {
        let tables = e12_iwa_simulations(29, true);
        for row in &tables[0].rows {
            assert_eq!(row[5], "true", "lockstep: {row:?}");
            let ratio: f64 = row[4].parse().unwrap();
            assert!(ratio < 16.0, "moves/m must be a constant: {row:?}");
        }
        let ratio = tables[1].column_f64("ratio");
        let hi = ratio.iter().cloned().fold(f64::MIN, f64::max);
        let lo = ratio.iter().cloned().fold(f64::MAX, f64::min);
        assert!(hi / lo < 5.0, "log-delay band too wide: {ratio:?}");
    }
}
