//! E9 — Milgram's traversal (paper §4.5) and
//! E10 — the greedy tourist (paper §4.6).

use fssga_graph::generators;
use fssga_graph::rng::Xoshiro256;
use fssga_protocols::greedy_tourist::GreedyTourist;
use fssga_protocols::traversal::TraversalHarness;

use crate::fit::power_law_exponent;
use crate::report::{f, Table};

/// Runs E9: hand-move exactness (2n-2) + O(n log n) time scaling.
pub fn e9_milgram_traversal(seed: u64, quick: bool) -> Vec<Table> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut t = Table::new(
        "E9: Milgram traversal — hand moves and round scaling",
        &[
            "graph",
            "n",
            "hand-moves",
            "2n-2",
            "rounds",
            "rounds/(n log2 n)",
        ],
    );
    let sizes: &[usize] = if quick {
        &[8, 16, 32]
    } else {
        &[8, 16, 32, 64, 128, 256]
    };
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in sizes {
        let g = generators::connected_gnp(n, (2.2 * (n as f64).ln()) / n as f64, &mut rng);
        let mut h = TraversalHarness::new(&g, 0);
        let run = h.run(20_000 * n as u64, &mut rng, false);
        assert!(run.complete, "traversal must finish at n={n}");
        let nlogn = n as f64 * (n as f64).log2();
        t.row(vec![
            format!("gnp {n}"),
            n.to_string(),
            run.hand_moves.to_string(),
            (2 * n - 2).to_string(),
            run.rounds.to_string(),
            f(run.rounds as f64 / nlogn),
        ]);
        xs.push(n as f64);
        ys.push(run.rounds as f64);
    }
    let p = power_law_exponent(&xs, &ys);
    t.note("paper: the hand moves exactly 2n-2 times (scan-first spanning tree),");
    t.note(format!(
        "and total time is O(n log n); measured rounds ~ n^{} (1 <= p < 1.5 expected)",
        f(p)
    ));
    vec![t]
}

/// Runs E10: tourist step/time scaling + sensitivity contrast vs Milgram.
pub fn e10_greedy_tourist(seed: u64, quick: bool) -> Vec<Table> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut t = Table::new(
        "E10a: greedy tourist — agent steps and rounds",
        &[
            "graph",
            "n",
            "agent-steps",
            "n log2 n",
            "rounds",
            "rounds/(n log2^2 n)",
        ],
    );
    let sizes: &[usize] = if quick {
        &[16, 32]
    } else {
        &[16, 32, 64, 128, 256]
    };
    for &n in sizes {
        let g = generators::connected_gnp(n, (2.2 * (n as f64).ln()) / n as f64, &mut rng);
        let mut tour = GreedyTourist::new(&g, 0);
        let run = tour.run(50_000_000, &mut rng);
        assert!(run.complete);
        let nlogn = n as f64 * (n as f64).log2();
        let nlog2n = nlogn * (n as f64).log2();
        t.row(vec![
            format!("gnp {n}"),
            n.to_string(),
            run.agent_steps.to_string(),
            f(nlogn),
            run.total_rounds.to_string(),
            f(run.total_rounds as f64 / nlog2n),
        ]);
    }
    t.note("paper: O(n log n) agent steps (Rosenkrantz et al. tour bound) and");
    t.note("O(n log^2 n) total time with BFS + symmetry-breaking per step");

    // Sensitivity contrast: kill a node on the Milgram ARM (critical,
    // Θ(n) of them) vs a non-agent node for the tourist (non-critical).
    let mut s = Table::new(
        "E10b: sensitivity contrast under one node fault",
        &["algorithm", "fault-target", "trials", "completed"],
    );
    let trials = if quick { 6 } else { 20 };
    let mut milgram_ok = 0;
    let mut tourist_ok = 0;
    for i in 0..trials {
        let g = generators::connected_gnp(24, 0.14, &mut Xoshiro256::seed_from_u64(seed + i));
        // Milgram: run until the arm is long, then kill an interior arm node.
        let mut h = TraversalHarness::new(&g, 0);
        let mut r = Xoshiro256::seed_from_u64(seed + 100 + i);
        let _ = h.run(120, &mut r, false);
        let arm = h.arm_path_nodes();
        if arm.len() >= 3 {
            let victim = arm[arm.len() / 2];
            h.network_mut().remove_node(victim);
        }
        let run = h.run(2_000_000, &mut r, false);
        let visited_all_alive = !run.corrupted
            && run.complete
            && (0..g.n()).all(|v| !h.network_mut().graph().is_alive(v as u32) || run.visited[v]);
        if visited_all_alive {
            milgram_ok += 1;
        }
        // Tourist: kill a non-agent unvisited node mid-run.
        let mut tour = GreedyTourist::new(&g, 0);
        let mut r = Xoshiro256::seed_from_u64(seed + 200 + i);
        let _ = tour.run(60, &mut r);
        let victim = (0..g.n() as u32)
            .rev()
            .find(|&v| v != tour.agent() && !tour.visited()[v as usize]);
        if let Some(v) = victim {
            tour.network_mut().remove_node(v);
        }
        let run = tour.run(50_000_000, &mut r);
        if run.complete {
            tourist_ok += 1;
        }
    }
    s.row(vec![
        "Milgram (sensitivity Θ(n))".into(),
        "interior arm node".into(),
        trials.to_string(),
        format!("{milgram_ok}/{trials}"),
    ]);
    s.row(vec![
        "greedy tourist (sensitivity 1)".into(),
        "non-agent node".into(),
        trials.to_string(),
        format!("{tourist_ok}/{trials}"),
    ]);
    s.note("paper: killing an arm node breaks Milgram's traversal; the tourist's only");
    s.note("critical node is the agent, so non-agent faults leave it reasonably correct");

    vec![t, s]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_shape() {
        let tables = e9_milgram_traversal(17, true);
        for row in &tables[0].rows {
            assert_eq!(row[2], row[3], "hand moves = 2n-2: {row:?}");
        }
    }

    #[test]
    fn e10_shape() {
        let tables = e10_greedy_tourist(17, true);
        // The tourist completes every faulted trial; Milgram fails most.
        let rows = &tables[1].rows;
        let parse = |s: &str| -> (u32, u32) {
            let p: Vec<&str> = s.split('/').collect();
            (p[0].parse().unwrap(), p[1].parse().unwrap())
        };
        let (m_ok, m_total) = parse(&rows[0][3]);
        let (t_ok, t_total) = parse(&rows[1][3]);
        assert_eq!(t_ok, t_total, "tourist survives all non-agent faults");
        assert!(m_ok < m_total, "arm faults must break some Milgram runs");
    }
}
