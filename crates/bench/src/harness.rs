//! A minimal, dependency-free micro-benchmark harness.
//!
//! The original benches used criterion, whose registry download breaks
//! the offline tier-1 build. This harness keeps the useful 20%: warmup,
//! automatic iteration-count calibration against a per-sample time
//! budget, and median-of-samples reporting, all on `std::time::Instant`.
//! Results print as one aligned line per benchmark and can be serialized
//! to JSON (hand-rolled; no serde) for CI artifacts.

use std::hint::black_box;
use std::time::Instant;

/// One measured benchmark.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Benchmark id, criterion-style: `group/name`.
    pub name: String,
    /// Iterations per timed sample (calibrated).
    pub iters: u64,
    /// Number of timed samples taken.
    pub samples: u32,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Fastest per-iteration time in nanoseconds.
    pub min_ns: f64,
}

impl Sample {
    /// JSON object for this sample (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"iters\":{},\"samples\":{},\"median_ns\":{:.1},\"min_ns\":{:.1}}}",
            self.name, self.iters, self.samples, self.median_ns, self.min_ns
        )
    }
}

/// Collects [`Sample`]s; one per `bench` call.
pub struct Harness {
    samples: Vec<Sample>,
    /// Per-sample time budget in nanoseconds (iteration count is chosen
    /// to fill it).
    sample_budget_ns: f64,
    /// Timed samples per benchmark.
    sample_count: u32,
}

impl Harness {
    /// A harness with the default budget (10 ms per sample, 15 samples),
    /// or the smoke-test budget (1 ms, 3 samples) if `smoke` is set —
    /// smoke runs measure nothing trustworthy but prove the bench runs.
    pub fn new(smoke: bool) -> Self {
        Self {
            samples: Vec::new(),
            sample_budget_ns: if smoke { 1e6 } else { 1e7 },
            sample_count: if smoke { 3 } else { 15 },
        }
    }

    /// Whether this harness was built in smoke mode (see [`Self::new`]).
    pub fn is_smoke(&self) -> bool {
        self.sample_count <= 3
    }

    /// Times `f`, recording the result under `name`. The closure's return
    /// value is passed through [`black_box`] so the work is not optimized
    /// away.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        // Warmup + calibration: run until 2 ms of wall time has elapsed
        // (at least once) to estimate the per-iteration cost.
        let mut warm_iters = 0u64;
        let start = Instant::now();
        loop {
            black_box(f());
            warm_iters += 1;
            if start.elapsed().as_nanos() as f64 >= 2e6 || warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let iters = ((self.sample_budget_ns / per_iter.max(1.0)) as u64).clamp(1, 10_000_000);

        let mut times: Vec<f64> = Vec::with_capacity(self.sample_count as usize);
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            times.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        let median = times[times.len() / 2];
        let sample = Sample {
            name: name.to_string(),
            iters,
            samples: self.sample_count,
            median_ns: median,
            min_ns: times[0],
        };
        println!(
            "{:<48} median {:>12}  min {:>12}",
            sample.name,
            fmt_ns(median),
            fmt_ns(times[0])
        );
        self.samples.push(sample);
    }

    /// All samples measured so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// JSON array of all samples.
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self.samples.iter().map(Sample::to_json).collect();
        format!("[{}]", body.join(","))
    }
}

/// Human-readable duration from nanoseconds.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Shared argv handling for the `benches/` binaries: `--smoke` selects
/// the 1 ms/3-sample configuration.
pub fn harness_from_args() -> Harness {
    let smoke =
        std::env::args().any(|a| a == "--smoke") || std::env::var_os("FSSGA_BENCH_SMOKE").is_some();
    Harness::new(smoke)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_serializes() {
        let mut h = Harness::new(true);
        let mut x = 0u64;
        h.bench("smoke/add", || {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(h.samples().len(), 1);
        assert!(h.samples()[0].median_ns > 0.0);
        let json = h.to_json();
        assert!(json.starts_with("[{\"name\":\"smoke/add\""));
        assert!(json.ends_with('}') || json.ends_with(']'));
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(12_500.0), "12.50 µs");
        assert_eq!(fmt_ns(12_500_000.0), "12.50 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }
}
