//! Minimal table rendering for experiment reports.

/// A printable experiment table: caption, column headers, string rows,
/// and free-form conclusion notes.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Experiment id and title, e.g. "E8: random walk move delay".
    pub caption: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Post-table notes: the paper's prediction vs what was measured.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(caption: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            caption: caption.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Fetches a column as f64s (for test assertions).
    pub fn column_f64(&self, name: &str) -> Vec<f64> {
        let idx = self
            .headers
            .iter()
            .position(|h| h == name)
            .unwrap_or_else(|| panic!("no column {name:?}"));
        self.rows
            .iter()
            .map(|r| {
                r[idx]
                    .trim_end_matches('%')
                    .parse::<f64>()
                    .unwrap_or(f64::NAN)
            })
            .collect()
    }

    /// Renders the table as GitHub-flavoured markdown (for embedding in
    /// EXPERIMENTS.md or reports).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.caption));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for n in &self.notes {
            out.push_str(&format!("\n> {n}"));
        }
        out.push('\n');
        out
    }

    /// Renders the table as aligned ASCII.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.caption));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  * {n}\n"));
        }
        out
    }
}

/// Formats a float compactly.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("hello");
        let s = t.render();
        assert!(s.contains("long-header"));
        assert!(s.contains("* hello"));
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("Cap", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("note");
        let md = t.render_markdown();
        assert!(md.contains("### Cap"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("> note"));
    }

    #[test]
    fn column_extraction() {
        let mut t = Table::new("T", &["n", "pct"]);
        t.row(vec!["4".into(), "50%".into()]);
        assert_eq!(t.column_f64("n"), vec![4.0]);
        assert_eq!(t.column_f64("pct"), vec![50.0]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(4.56789), "4.568");
        assert_eq!(f(45.6789), "45.7");
        assert_eq!(f(45678.9), "45679");
    }
}
