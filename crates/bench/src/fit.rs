//! Scaling-law fitting: the experiments verify asymptotic claims by
//! regressing measured costs against the predicted law in log space.

/// Least-squares slope and intercept of `y = a + b x`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2);
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let a = (sy - b * sx) / n;
    (a, b)
}

/// The exponent `p` in `y ≈ c · x^p`, from a log-log fit.
pub fn power_law_exponent(xs: &[f64], ys: &[f64]) -> f64 {
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    linear_fit(&lx, &ly).1
}

/// Mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Median of a sample (by sorting a copy).
pub fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let (a, b) = linear_fit(&xs, &ys);
        assert!((a - 1.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn quadratic_exponent() {
        let xs: Vec<f64> = (1..=6).map(|i| (1 << i) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x * x).collect();
        let p = power_law_exponent(&xs, &ys);
        assert!((p - 2.0).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn nlogn_exponent_between_1_and_2() {
        let xs: Vec<f64> = (3..=10).map(|i| (1 << i) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * x.log2()).collect();
        let p = power_law_exponent(&xs, &ys);
        assert!(p > 1.0 && p < 1.5, "p = {p}");
    }

    #[test]
    fn stats() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }
}

/// Pearson chi-square statistic against the given expected counts.
pub fn chi_square(observed: &[u64], expected: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected.len());
    observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| {
            let d = o as f64 - e;
            d * d / e
        })
        .sum()
}

#[cfg(test)]
mod chi_tests {
    use super::*;

    #[test]
    fn perfect_fit_is_zero() {
        assert_eq!(chi_square(&[10, 10, 10], &[10.0, 10.0, 10.0]), 0.0);
    }

    #[test]
    fn deviation_grows_statistic() {
        let near = chi_square(&[11, 9, 10], &[10.0, 10.0, 10.0]);
        let far = chi_square(&[20, 0, 10], &[10.0, 10.0, 10.0]);
        assert!(far > near);
        assert!((near - 0.2).abs() < 1e-9);
    }
}
