//! Experiment harness for the reproduction.
//!
//! The paper is a theory paper: its "evaluation" is the set of theorems,
//! claims and complexity statements. This crate regenerates each of them
//! as a measured table — experiments E1–E14 of `DESIGN.md` — via
//! `cargo run -p fssga-bench --release --bin experiments [-- eN ...]`,
//! and hosts the dependency-free micro-benchmarks (`benches/`, see [`harness`]).
//!
//! Each experiment is an ordinary function returning a [`report::Table`],
//! so the integration tests can assert the *shape* of every result (who
//! wins, which exponent, where the crossover is) without re-parsing
//! stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fit;
pub mod harness;
pub mod report;

/// The default master seed for all experiments. Every experiment derives
/// its own streams from it, so the whole suite is reproducible.
pub const DEFAULT_SEED: u64 = 0xF55A_2006;
