//! Regenerates the paper's quantitative claims as tables.
//!
//! ```text
//! cargo run -p fssga-bench --release --bin experiments             # all
//! cargo run -p fssga-bench --release --bin experiments -- e8 e11  # some
//! cargo run -p fssga-bench --release --bin experiments -- --quick # small workloads
//! cargo run -p fssga-bench --release --bin experiments -- --seed 42 e13
//! ```

use fssga_bench::{experiments, DEFAULT_SEED};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = DEFAULT_SEED;
    let mut quick = false;
    let mut markdown = false;
    let mut ids: Vec<String> = Vec::new();
    while let Some(a) = args.first().cloned() {
        args.remove(0);
        match a.as_str() {
            "--quick" => quick = true,
            "--markdown" => markdown = true,
            "--seed" => {
                seed = args
                    .first()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed takes a u64");
                args.remove(0);
            }
            "--help" | "-h" => {
                eprintln!("usage: experiments [--quick] [--markdown] [--seed N] [e1 .. e15]");
                return;
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        ids = experiments::ALL.iter().map(|s| s.to_string()).collect();
    }
    println!("# Symmetric Network Computation — experiment suite");
    println!("# seed = {seed}, quick = {quick}");
    println!();
    for id in &ids {
        let start = std::time::Instant::now();
        let tables = experiments::run(id, seed, quick);
        for t in &tables {
            if markdown {
                println!("{}", t.render_markdown());
            } else {
                println!("{}", t.render());
            }
        }
        println!("  [{id} took {:?}]", start.elapsed());
        println!();
    }
}
