//! `fssga-bench` — the recorded performance baselines.
//!
//! ```text
//! fssga-bench engine                  # full baseline, writes BENCH_engine.json
//! fssga-bench engine --smoke          # tiny workloads, CI sanity only
//! fssga-bench engine --out path.json
//! fssga-bench engine --trace-out t.jsonl   # also emit a JSONL round trace
//! fssga-bench parallel                # thread-scaling baseline, BENCH_parallel.json
//! fssga-bench parallel --smoke [--out PATH] [--trace-out PATH]
//! fssga-bench golden [--out path.jsonl]    # regenerate the metrics snapshot
//! fssga-bench golden --check [--out path]  # diff against the recorded snapshot
//! fssga-bench churn                   # streaming-churn baseline, BENCH_churn.json
//! fssga-bench churn --smoke [--out PATH] [--trace-out PATH]
//! fssga-bench serve                   # service load baseline, BENCH_serve.json
//! fssga-bench serve --smoke [--out PATH] [--addr HOST:PORT] [--clients N]
//!                   [--jsonl-out PATH] [--shutdown]
//! ```
//!
//! The `engine` baseline races the interpreter against the compiled
//! kernel ([`fssga_engine::CompiledKernel`]) on synchronous fixpoint
//! runs at n ≥ 50 000 — census OR-diffusion and shortest-paths
//! relaxation on a torus — and records median wall times plus the
//! speedup. Both engines are bit-identical in trajectory (asserted here
//! on final states), so the speedup is a pure execution-path comparison.
//!
//! The `churn` baseline streams a mixed arrival/departure
//! [`fssga_engine::ChurnStream`] through a converged census network and
//! records the incremental repair cost per event against a from-scratch
//! kernel rebuild, the recovery-time distribution, and the sustained
//! event throughput. It also replays the same stream on the interpreter
//! (full recompute every round) and asserts the final states are
//! bit-identical — the dirty-set repair path must be semantically
//! invisible.
//!
//! The `serve` baseline is a load generator for the `fssga-serve`
//! service: it spawns many concurrent TCP clients (100 in full mode),
//! each submitting framed jobs from a fixed census / shortest-paths /
//! k-parity mix, retrying on `overloaded` sheds, and records sustained
//! jobs/sec plus the p50/p99/max submit-to-done latency. Every `done`
//! fingerprint is checked against an in-process run of the same spec,
//! so the baseline doubles as a concurrency bit-identity test. By
//! default it boots an in-process server on an ephemeral port;
//! `--addr` targets an already-running one instead (`--shutdown` then
//! sends the shutdown frame when finished).
//!
//! The timed runs carry a [`fssga_engine::NullTracer`] — the zero-cost
//! observability default — so the recorded medians are untraced numbers.
//! One extra *observed* kernel run per workload (never timed) collects
//! the [`RunMetrics`] columns (`kernel_activations_per_round`,
//! `dirty_hit_rate`) and, under `--trace-out`, streams every round event
//! to a replayable JSONL artifact.

use std::io::Write;
use std::time::Instant;

use fssga_bench::harness::fmt_ns;
use fssga_bench::DEFAULT_SEED;
use fssga_engine::{
    run_churn_traced, Budget, ChurnConfig, ChurnStream, Engine, Network, RoundLog, RunMetrics,
    Runner, Tracer,
};
use fssga_graph::rng::Xoshiro256;
use fssga_graph::{DynGraph, Graph, NodeId};
use fssga_protocols::census::{Census, FmSketch};
use fssga_protocols::shortest_paths::ShortestPaths;

/// Wall times (ns) and the fixpoint round for one engine on one workload.
struct Timing {
    times_ns: Vec<f64>,
    rounds: usize,
}

impl Timing {
    fn median_ns(&self) -> f64 {
        let mut t = self.times_ns.clone();
        t.sort_by(|a, b| a.total_cmp(b));
        t[t.len() / 2]
    }
}

/// One interpreter-vs-kernel comparison, plus the kernel's observed
/// per-round metrics (from a separate, untimed run).
struct Row {
    name: String,
    n: usize,
    interp: Timing,
    kernel: Timing,
    metrics: RunMetrics,
    /// Bits per node in the kernel's packed state-index mirror (4, 8,
    /// 16, or 32 — chosen from the protocol's `|Q|`).
    packed_bits: u32,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.interp.median_ns() / self.kernel.median_ns()
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"n\":{},\"rounds\":{},\
             \"interpreter_median_ns\":{:.0},\"kernel_median_ns\":{:.0},\
             \"reps\":{},\"speedup\":{:.2},\"packed_bits\":{},\
             \"kernel_activations_per_round\":{:.1},\"dirty_hit_rate\":{:.4}}}",
            self.name,
            self.n,
            self.interp.rounds,
            self.interp.median_ns(),
            self.kernel.median_ns(),
            self.interp.times_ns.len(),
            self.speedup(),
            self.packed_bits,
            self.metrics.activations_per_round(),
            self.metrics.dirty_hit_rate()
        )
    }
}

/// Times `reps` fixpoint runs of `engine`, returning wall times and the
/// (engine-independent) fixpoint round. `run` must build a fresh network
/// per call; it returns (fixpoint round, final states fingerprint).
fn time_engine(
    reps: usize,
    engine: Engine,
    mut run: impl FnMut(Engine) -> (usize, u64),
) -> (Timing, u64) {
    let mut times_ns = Vec::with_capacity(reps);
    let mut rounds = 0;
    let mut fingerprint = 0;
    for _ in 0..reps {
        let t = Instant::now();
        let (r, f) = run(engine);
        times_ns.push(t.elapsed().as_nanos() as f64);
        rounds = r;
        fingerprint = f;
    }
    (Timing { times_ns, rounds }, fingerprint)
}

/// FNV-1a over state indices: cheap cross-engine equality witness.
fn fingerprint(indices: impl Iterator<Item = usize>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for i in indices {
        h ^= i as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn census_row(g: &Graph, name: &str, reps: usize, tracer: &mut dyn Tracer) -> Row {
    use fssga_engine::StateSpace;
    let mut rng = Xoshiro256::seed_from_u64(DEFAULT_SEED);
    let sketches: Vec<FmSketch<16>> = (0..g.n())
        .map(|_| FmSketch::random_init(&mut rng))
        .collect();
    let run = |engine: Engine| {
        let mut net = Network::new(g, Census::<16>, |v| sketches[v as usize]);
        let report = Runner::new(&mut net)
            .engine(engine)
            .budget(Budget::Fixpoint(10 * g.n()))
            .run();
        (
            report.fixpoint.expect("census converges"),
            fingerprint(net.states().iter().map(|s| s.index())),
        )
    };
    let (interp, fi) = time_engine(reps, Engine::Interpreter, run);
    let (kernel, fk) = time_engine(reps, Engine::Kernel, run);
    assert_eq!(fi, fk, "engines must agree on final states");
    assert_eq!(interp.rounds, kernel.rounds, "engines must agree on rounds");
    // One untimed observed kernel run for the metric columns / trace.
    let mut net = Network::new(g, Census::<16>, |v| sketches[v as usize]);
    let metrics = Runner::new(&mut net)
        .engine(Engine::Kernel)
        .budget(Budget::Fixpoint(10 * g.n()))
        .observed()
        .tracer(tracer)
        .run()
        .metrics
        .expect("observed run carries metrics");
    let packed_bits = net.kernel().map_or(32, |k| k.packed_width_bits());
    Row {
        name: name.to_string(),
        n: g.n(),
        interp,
        kernel,
        metrics,
        packed_bits,
    }
}

fn shortest_paths_row(g: &Graph, name: &str, reps: usize, tracer: &mut dyn Tracer) -> Row {
    use fssga_engine::StateSpace;
    const CAP: usize = 256;
    let build = || {
        Network::new(g, ShortestPaths::<CAP>, |v| {
            ShortestPaths::<CAP>::init(v == 0)
        })
    };
    let run = |engine: Engine| {
        let mut net = build();
        let report = Runner::new(&mut net)
            .engine(engine)
            .budget(Budget::Fixpoint(8 * CAP))
            .run();
        (
            report.fixpoint.expect("relaxation converges"),
            fingerprint(net.states().iter().map(|s| s.index())),
        )
    };
    let (interp, fi) = time_engine(reps, Engine::Interpreter, run);
    let (kernel, fk) = time_engine(reps, Engine::Kernel, run);
    assert_eq!(fi, fk, "engines must agree on final states");
    assert_eq!(interp.rounds, kernel.rounds, "engines must agree on rounds");
    // One untimed observed kernel run for the metric columns / trace.
    let mut net = build();
    let metrics = Runner::new(&mut net)
        .engine(Engine::Kernel)
        .budget(Budget::Fixpoint(8 * CAP))
        .observed()
        .tracer(tracer)
        .run()
        .metrics
        .expect("observed run carries metrics");
    let packed_bits = net.kernel().map_or(32, |k| k.packed_width_bits());
    Row {
        name: name.to_string(),
        n: g.n(),
        interp,
        kernel,
        metrics,
        packed_bits,
    }
}

fn engine_baseline(smoke: bool, out: &str, trace_out: Option<&str>) {
    use fssga_graph::generators;
    // Torus keeps every degree at 4 while the diameter (≈ side) sets the
    // number of rounds; side 224 puts n just past the 50k floor.
    let (side, reps) = if smoke { (32, 1) } else { (224, 5) };
    let g = generators::torus(side, side);
    println!(
        "engine baseline: torus {side}x{side} (n = {}), {reps} rep(s) per engine",
        g.n()
    );
    let run_rows = |tracer: &mut dyn Tracer| {
        let mut rows = vec![
            census_row(&g, &format!("census/torus-{side}x{side}"), reps, tracer),
            shortest_paths_row(
                &g,
                &format!("shortest-paths/torus-{side}x{side}"),
                reps,
                tracer,
            ),
        ];
        if !smoke {
            // Scale row: one n = 10^6 rep per workload (the interpreter
            // twin dominates the wall time here; medians over reps add
            // nothing at this size). See EXPERIMENTS.md for the
            // protocol.
            let big = 1000usize;
            let gb = generators::torus(big, big);
            println!(
                "scale row: torus {big}x{big} (n = {}), 1 rep per engine",
                gb.n()
            );
            rows.push(census_row(
                &gb,
                &format!("census/torus-{big}x{big}"),
                1,
                tracer,
            ));
            rows.push(shortest_paths_row(
                &gb,
                &format!("shortest-paths/torus-{big}x{big}"),
                1,
                tracer,
            ));
        }
        rows
    };
    let rows = match trace_out {
        Some(path) => {
            let f = std::io::BufWriter::new(std::fs::File::create(path).expect("create trace"));
            let mut sink = fssga_engine::JsonlTrace::new(f);
            let rows = run_rows(&mut sink);
            sink.into_inner().flush().expect("flush trace");
            println!("wrote {path}");
            rows
        }
        None => run_rows(&mut fssga_engine::NullTracer),
    };
    for row in &rows {
        println!(
            "{:<36} n={:<7} rounds={:<4} interp {:>12} kernel {:>12} speedup {:>6.2}x \
             packed {:>2}b act/round {:>9.1} dirty-hit {:>6.1}%",
            row.name,
            row.n,
            row.interp.rounds,
            fmt_ns(row.interp.median_ns()),
            fmt_ns(row.kernel.median_ns()),
            row.speedup(),
            row.packed_bits,
            row.metrics.activations_per_round(),
            100.0 * row.metrics.dirty_hit_rate()
        );
    }
    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    let json = format!(
        "{{\"bench\":\"engine\",\"smoke\":{},\"workloads\":[{}]}}\n",
        smoke,
        body.join(",")
    );
    std::fs::write(out, json).expect("write baseline json");
    println!("wrote {out}");
}

/// Thread counts recorded by the `parallel` baseline.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Kernel wall times for one workload across [`THREAD_COUNTS`].
struct ParRow {
    name: String,
    n: usize,
    rounds: usize,
    reps: usize,
    /// Median kernel wall time per entry of [`THREAD_COUNTS`].
    median_ns: Vec<f64>,
}

impl ParRow {
    fn to_json(&self) -> String {
        let medians: Vec<String> = self.median_ns.iter().map(|t| format!("{t:.0}")).collect();
        let speedups: Vec<String> = self
            .median_ns
            .iter()
            .map(|&t| format!("{:.2}", self.median_ns[0] / t))
            .collect();
        format!(
            "{{\"name\":\"{}\",\"n\":{},\"rounds\":{},\"reps\":{},\
             \"median_ns\":[{}],\"speedup_vs_1\":[{}]}}",
            self.name,
            self.n,
            self.rounds,
            self.reps,
            medians.join(","),
            speedups.join(",")
        )
    }
}

/// Times `reps` sharded fixpoint runs per thread count. `run(threads)`
/// must build a fresh network, run it to fixpoint on the sharded
/// engine, and return (fixpoint round, final-state fingerprint); the
/// fingerprint is asserted identical across thread counts — the bench
/// re-proves the bit-identity contract on every recorded workload.
fn parallel_workload(
    name: &str,
    n: usize,
    reps: usize,
    mut run: impl FnMut(usize) -> (usize, u64),
) -> ParRow {
    let mut median_ns = Vec::with_capacity(THREAD_COUNTS.len());
    let mut rounds = 0;
    let mut base_fingerprint = None;
    for &threads in &THREAD_COUNTS {
        let mut times_ns = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t = Instant::now();
            let (r, f) = run(threads);
            times_ns.push(t.elapsed().as_nanos() as f64);
            rounds = r;
            match base_fingerprint {
                None => base_fingerprint = Some(f),
                Some(b) => assert_eq!(b, f, "{name}: {threads} threads diverged"),
            }
        }
        median_ns.push(Timing { times_ns, rounds }.median_ns());
    }
    ParRow {
        name: name.to_string(),
        n,
        rounds,
        reps,
        median_ns,
    }
}

fn parallel_baseline(smoke: bool, out: &str, trace_out: Option<&str>) {
    use fssga_engine::StateSpace;
    use fssga_graph::generators;
    let (side, pa_n, reps) = if smoke {
        (32, 2_000, 1)
    } else {
        (224, 50_000, 5)
    };
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let torus = generators::torus(side, side);
    let mut rng = Xoshiro256::seed_from_u64(DEFAULT_SEED);
    let powerlaw = generators::preferential_attachment(pa_n, 4, &mut rng);
    println!(
        "parallel baseline: torus {side}x{side} (n = {}) + power-law (n = {pa_n}), \
         {reps} rep(s) x threads {THREAD_COUNTS:?}, host has {host_cpus} cpu(s)",
        torus.n()
    );

    fn census_run<'a>(
        g: &'a Graph,
        sketches: &'a [FmSketch<16>],
    ) -> impl FnMut(usize) -> (usize, u64) + 'a {
        use fssga_engine::StateSpace;
        move |threads: usize| {
            let mut net = Network::new(g, Census::<16>, |v| sketches[v as usize]);
            let report = Runner::new(&mut net)
                .engine(Engine::Sharded)
                .threads(threads)
                .budget(Budget::Fixpoint(10 * g.n()))
                .run();
            (
                report.fixpoint.expect("census converges"),
                fingerprint(net.states().iter().map(|s| s.index())),
            )
        }
    }
    let mut rng = Xoshiro256::seed_from_u64(DEFAULT_SEED);
    let torus_sketches: Vec<FmSketch<16>> = (0..torus.n())
        .map(|_| FmSketch::random_init(&mut rng))
        .collect();
    let mut rng = Xoshiro256::seed_from_u64(DEFAULT_SEED ^ 1);
    let pa_sketches: Vec<FmSketch<16>> = (0..powerlaw.n())
        .map(|_| FmSketch::random_init(&mut rng))
        .collect();
    const CAP: usize = 256;
    let sp_run = |threads: usize| {
        let mut net = Network::new(&torus, ShortestPaths::<CAP>, |v| {
            ShortestPaths::<CAP>::init(v == 0)
        });
        let report = Runner::new(&mut net)
            .engine(Engine::Sharded)
            .threads(threads)
            .budget(Budget::Fixpoint(8 * CAP))
            .run();
        (
            report.fixpoint.expect("relaxation converges"),
            fingerprint(net.states().iter().map(|s| s.index())),
        )
    };

    let rows = [
        parallel_workload(
            &format!("census/torus-{side}x{side}"),
            torus.n(),
            reps,
            census_run(&torus, &torus_sketches),
        ),
        parallel_workload(
            &format!("shortest-paths/torus-{side}x{side}"),
            torus.n(),
            reps,
            sp_run,
        ),
        parallel_workload(
            &format!("census/powerlaw-{pa_n}"),
            powerlaw.n(),
            reps,
            census_run(&powerlaw, &pa_sketches),
        ),
    ];
    for row in &rows {
        let cols: Vec<String> = THREAD_COUNTS
            .iter()
            .zip(&row.median_ns)
            .map(|(t, &ns)| format!("t{t} {:>10}", fmt_ns(ns)))
            .collect();
        println!(
            "{:<28} n={:<6} rounds={:<4} {}  speedup@4t {:.2}x",
            row.name,
            row.n,
            row.rounds,
            cols.join(" "),
            row.median_ns[0] / row.median_ns[2]
        );
    }
    // One observed, traced run at the top thread count: the JSONL stream
    // carries per-shard events, and must be byte-deterministic (the
    // committing thread emits shard lines in ascending shard order).
    if let Some(path) = trace_out {
        let f = std::io::BufWriter::new(std::fs::File::create(path).expect("create trace"));
        let mut sink = fssga_engine::JsonlTrace::new(f);
        let mut net = Network::new(&torus, Census::<16>, |v| torus_sketches[v as usize]);
        Runner::new(&mut net)
            .engine(Engine::Sharded)
            .threads(*THREAD_COUNTS.last().unwrap())
            .budget(Budget::Fixpoint(10 * torus.n()))
            .observed()
            .tracer(&mut sink)
            .run();
        sink.into_inner().flush().expect("flush trace");
        println!("wrote {path}");
    }
    let body: Vec<String> = rows.iter().map(ParRow::to_json).collect();
    let threads_json: Vec<String> = THREAD_COUNTS.iter().map(usize::to_string).collect();
    let json = format!(
        "{{\"bench\":\"parallel\",\"smoke\":{},\"host_cpus\":{},\
         \"threads\":[{}],\"workloads\":[{}]}}\n",
        smoke,
        host_cpus,
        threads_json.join(","),
        body.join(",")
    );
    std::fs::write(out, json).expect("write baseline json");
    println!("wrote {out}");
}

/// Deterministic sketch for a node id, shared by every replay of the
/// same stream so arriving nodes start identically everywhere.
fn churn_sketch(v: NodeId) -> FmSketch<16> {
    let mut rng =
        Xoshiro256::seed_from_u64(DEFAULT_SEED ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    FmSketch::random_init(&mut rng)
}

fn churn_baseline(smoke: bool, out: &str, trace_out: Option<&str>) {
    use fssga_engine::StateSpace;
    use fssga_graph::generators;
    let (side, horizon, rate) = if smoke {
        (32, 64, 2.0)
    } else {
        (224, 2_000, 5.0)
    };
    let g = generators::torus(side, side);
    let stream = ChurnStream::generate(
        &DynGraph::from_graph(&g),
        &ChurnConfig {
            seed: DEFAULT_SEED,
            horizon,
            rate,
            ..ChurnConfig::default()
        },
    );
    println!(
        "churn baseline: torus {side}x{side} (n = {}), {} scheduled events over {horizon} rounds",
        g.n(),
        stream.len()
    );

    let converge = |net: &mut Network<Census<16>>| {
        Runner::new(net)
            .engine(Engine::Kernel)
            .budget(Budget::Fixpoint(10 * g.n()))
            .run()
            .fixpoint
            .expect("census converges");
    };

    // From-scratch rebuild cost: one full kernel fixpoint on the initial
    // topology — what every event would cost if repair meant rebuilding.
    let mut rebuild = Network::new_compiled(&g, Census::<16>, churn_sketch);
    let t = Instant::now();
    converge(&mut rebuild);
    let rebuild_ns = t.elapsed().as_nanos() as f64;
    let rebuild_activations = rebuild.metrics.activations;

    // Incremental run: converge first, then stream the events through the
    // dirty-set kernel. The report's activations count only churn work
    // (the harness reads per-round metric deltas).
    let mut net = Network::new_compiled(&g, Census::<16>, churn_sketch);
    converge(&mut net);
    let t = Instant::now();
    let report = run_churn_traced(
        &mut net,
        &stream,
        churn_sketch,
        &mut fssga_engine::NullTracer,
    );
    let churn_ns = t.elapsed().as_nanos() as f64;
    let fp_kernel = fingerprint(net.states().iter().map(|s| s.index()));

    // Interpreter replay: full recompute every round — the from-scratch
    // semantics the incremental path must be indistinguishable from.
    let mut full = Network::new(&g, Census::<16>, churn_sketch);
    Runner::new(&mut full)
        .engine(Engine::Interpreter)
        .budget(Budget::Fixpoint(10 * g.n()))
        .run()
        .fixpoint
        .expect("census converges");
    let mut plan = stream.plan();
    for round in 0..stream.horizon() {
        plan.apply_due_with(&mut full, round, churn_sketch);
        full.sync_step_seeded(0);
    }
    let bit_identical = fingerprint(full.states().iter().map(|s| s.index())) == fp_kernel;
    assert!(
        bit_identical,
        "incremental kernel repair diverged from full recompute"
    );

    // One untimed traced replay when a JSONL artifact was requested.
    if let Some(path) = trace_out {
        let f = std::io::BufWriter::new(std::fs::File::create(path).expect("create trace"));
        let mut sink = fssga_engine::JsonlTrace::new(f);
        let mut traced = Network::new_compiled(&g, Census::<16>, churn_sketch);
        converge(&mut traced);
        let _ = run_churn_traced(&mut traced, &stream, churn_sketch, &mut sink);
        sink.into_inner().flush().expect("flush trace");
        println!("wrote {path}");
    }

    let events_per_sec = report.events() as f64 / (churn_ns / 1e9);
    let rebuild_ratio = rebuild_activations as f64 / report.work_per_event().max(f64::MIN_POSITIVE);
    println!(
        "applied {} events ({} arrivals, {} departures, {} skipped) in {}",
        report.events(),
        report.arrivals,
        report.departures,
        report.skipped,
        fmt_ns(churn_ns)
    );
    println!(
        "work/event {:>8.1} activations vs rebuild {} ({:.0}x cheaper)  \
         events/sec {:>9.0}  recovery p50/p99/max {}/{}/{} rounds  bit-identical {}",
        report.work_per_event(),
        rebuild_activations,
        rebuild_ratio,
        events_per_sec,
        report.recovery_quantile(0.5),
        report.recovery_quantile(0.99),
        report.recovery_quantile(1.0),
        bit_identical
    );
    let json = format!(
        "{{\"bench\":\"churn\",\"smoke\":{},\"n\":{},\"horizon\":{},\"rate\":{:.1},\
         \"scheduled_events\":{},\"applied_events\":{},\"arrivals\":{},\"departures\":{},\
         \"skipped\":{},\"rounds\":{},\"work_per_event\":{:.2},\"rebuild_activations\":{},\
         \"rebuild_ratio\":{:.1},\"rebuild_ns\":{:.0},\"events_per_sec\":{:.1},\
         \"elapsed_ns\":{:.0},\"recovery_p50\":{},\"recovery_p90\":{},\"recovery_p99\":{},\
         \"recovery_max\":{},\"bit_identical\":{},\"final_alive\":{},\"final_edges\":{}}}\n",
        smoke,
        g.n(),
        horizon,
        rate,
        stream.len(),
        report.events(),
        report.arrivals,
        report.departures,
        report.skipped,
        report.rounds,
        report.work_per_event(),
        rebuild_activations,
        rebuild_ratio,
        rebuild_ns,
        events_per_sec,
        churn_ns,
        report.recovery_quantile(0.5),
        report.recovery_quantile(0.9),
        report.recovery_quantile(0.99),
        report.recovery_quantile(1.0),
        bit_identical,
        report.final_alive,
        report.final_edges
    );
    std::fs::write(out, json).expect("write baseline json");
    println!("wrote {out}");
}

/// The golden observability snapshot: per-round metrics of a compiled
/// census run on `path(16)` — tiny, deterministic (sketches drawn from
/// [`DEFAULT_SEED`]), and exercising the dirty-set scheduler. CI
/// regenerates this and diffs it against the recorded file, so any
/// change to metric semantics must update the snapshot deliberately.
fn golden_metrics() -> String {
    use fssga_graph::generators;
    let g = generators::path(16);
    let mut rng = Xoshiro256::seed_from_u64(DEFAULT_SEED);
    let sketches: Vec<FmSketch<8>> = (0..g.n())
        .map(|_| FmSketch::random_init(&mut rng))
        .collect();
    let mut net = Network::new(&g, Census::<8>, |v| sketches[v as usize]);
    let mut log = RoundLog::default();
    Runner::new(&mut net)
        .engine(Engine::Kernel)
        .budget(Budget::Fixpoint(160))
        .tracer(&mut log)
        .run();
    let mut s = String::new();
    for r in &log.rounds {
        s.push_str(&r.to_jsonl());
        s.push('\n');
    }
    s
}

fn golden(check: bool, path: &str) {
    let fresh = golden_metrics();
    if check {
        let recorded = std::fs::read_to_string(path).expect("read recorded snapshot");
        if recorded != fresh {
            eprintln!("golden metrics snapshot drifted from {path}:");
            for (i, (a, b)) in recorded.lines().zip(fresh.lines()).enumerate() {
                if a != b {
                    eprintln!("line {}:\n  recorded: {a}\n  fresh:    {b}", i + 1);
                }
            }
            let (r, f) = (recorded.lines().count(), fresh.lines().count());
            if r != f {
                eprintln!("line counts differ: recorded {r}, fresh {f}");
            }
            std::process::exit(1);
        }
        println!("golden metrics snapshot matches {path}");
    } else {
        std::fs::write(path, fresh).expect("write snapshot");
        println!("wrote {path}");
    }
}

/// What one client's one job produced.
struct ServeJobResult {
    latency_ns: f64,
    fingerprint: String,
    round_frames: u64,
    sheds: u64,
    captured: Vec<String>,
}

/// Submits one job over a fresh connection (reconnecting after
/// `overloaded` sheds — the server closes the connection with the
/// error frame) and reads the stream to its final frame.
fn serve_submit(target: &str, spec_json: &str, capture: bool) -> Result<ServeJobResult, String> {
    use fssga_serve::{read_frame, write_frame, Json};
    use std::net::TcpStream;
    let mut sheds = 0u64;
    loop {
        let mut stream = TcpStream::connect(target).map_err(|e| format!("connect: {e}"))?;
        let t0 = Instant::now();
        write_frame(&mut stream, spec_json).map_err(|e| format!("submit: {e}"))?;
        let mut round_frames = 0u64;
        let mut captured = Vec::new();
        let shed = loop {
            let text = read_frame(&mut stream)
                .map_err(|e| format!("read: {e}"))?
                .ok_or("server closed mid-job")?;
            let v = Json::parse(&text).map_err(|e| format!("bad frame: {e}"))?;
            if capture {
                captured.push(text.clone());
            }
            match v.get("t").and_then(Json::as_str) {
                Some("accepted") => {}
                Some("round") | Some("shard") | Some("churn") | Some("fault") => round_frames += 1,
                Some("done") => {
                    let fingerprint = v
                        .get("fingerprint")
                        .and_then(Json::as_str)
                        .ok_or("done frame without fingerprint")?
                        .to_owned();
                    return Ok(ServeJobResult {
                        latency_ns: t0.elapsed().as_nanos() as f64,
                        fingerprint,
                        round_frames,
                        sheds,
                        captured,
                    });
                }
                Some("error") => {
                    let code = v.get("code").and_then(Json::as_str).unwrap_or("?");
                    if code == "overloaded" {
                        break true; // shed: back off and resubmit
                    }
                    return Err(format!("job failed: {text}"));
                }
                other => return Err(format!("unexpected frame type {other:?}")),
            }
        };
        if shed {
            sheds += 1;
            std::thread::sleep(std::time::Duration::from_millis(2 * sheds.min(25)));
        }
    }
}

/// Runs `spec_json` in-process through the service's own executor to
/// get the reference fingerprint the served runs must reproduce.
fn serve_local_fingerprint(spec_json: &str) -> String {
    use fssga_serve::{execute, JobCancel, JobSpec, Json, Limits};
    let v = Json::parse(spec_json).expect("spec json");
    let spec = JobSpec::parse(&v, &Limits::default()).expect("spec parses");
    let (tx, rx) = std::sync::mpsc::sync_channel(1 << 14);
    let done = execute(0, &spec, &JobCancel::new(), &tx).expect("local reference run");
    drop((tx, rx));
    Json::parse(&done)
        .expect("done json")
        .get("fingerprint")
        .and_then(Json::as_str)
        .expect("fingerprint")
        .to_owned()
}

/// The service throughput/latency baseline (see the module docs).
fn serve_baseline(
    smoke: bool,
    out: &str,
    addr: Option<&str>,
    clients_override: Option<usize>,
    jsonl_out: Option<&str>,
    send_shutdown: bool,
) {
    use fssga_serve::{serve, write_frame, ServeConfig};
    let (default_clients, jobs_per_client, side) = if smoke { (8, 2, 8) } else { (100, 3, 12) };
    let clients = clients_override.unwrap_or(default_clients);
    let specs: Vec<String> = vec![
        format!(
            r#"{{"t":"job","proto":"census","graph":{{"gen":"torus","rows":{side},"cols":{side}}}}}"#
        ),
        format!(
            r#"{{"t":"job","proto":"shortest-paths","graph":{{"gen":"torus","rows":{side},"cols":{side}}}}}"#
        ),
        format!(
            r#"{{"t":"job","proto":"kparity","graph":{{"gen":"cycle","n":{}}}}}"#,
            side * side
        ),
    ];
    let expected: Vec<String> = specs.iter().map(|s| serve_local_fingerprint(s)).collect();

    let (workers, queue_cap) = (2usize, 32usize);
    let (handle, target) = match addr {
        Some(a) => (None, a.to_string()),
        None => {
            let h = serve(ServeConfig {
                addr: "127.0.0.1:0".into(),
                workers,
                queue_cap,
                allow_shutdown: true,
                read_timeout_ms: 2_000,
                ..ServeConfig::default()
            })
            .expect("boot in-process server");
            let t = h.addr().to_string();
            (Some(h), t)
        }
    };
    println!(
        "serve load: {clients} clients x {jobs_per_client} jobs against {target} \
         ({} in-process)",
        if handle.is_some() { "booted" } else { "not" }
    );

    let t0 = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|ci| {
            let target = target.clone();
            let specs = specs.clone();
            let expected = expected.clone();
            let capture = jsonl_out.is_some() && ci == 0;
            std::thread::spawn(move || -> Result<Vec<ServeJobResult>, String> {
                let mut results = Vec::new();
                for j in 0..jobs_per_client {
                    let which = (ci + j) % specs.len();
                    let r = serve_submit(&target, &specs[which], capture && j == 0)?;
                    if r.fingerprint != expected[which] {
                        return Err(format!(
                            "client {ci} job {j}: fingerprint {} != expected {}",
                            r.fingerprint, expected[which]
                        ));
                    }
                    results.push(r);
                }
                Ok(results)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut round_frames = 0u64;
    let mut sheds = 0u64;
    let mut captured: Vec<String> = Vec::new();
    for t in threads {
        let results = t
            .join()
            .expect("client thread")
            .unwrap_or_else(|e| panic!("serve load client failed: {e}"));
        for r in results {
            latencies.push(r.latency_ns);
            round_frames += r.round_frames;
            sheds += r.sheds;
            if !r.captured.is_empty() {
                captured = r.captured;
            }
        }
    }
    let elapsed_ns = t0.elapsed().as_nanos() as f64;

    if let (Some(path), false) = (jsonl_out, captured.is_empty()) {
        let mut text = captured.join("\n");
        text.push('\n');
        std::fs::write(path, text).expect("write jsonl artifact");
        println!("wrote {path}");
    }
    if let Some(a) = addr {
        if send_shutdown {
            let mut s = std::net::TcpStream::connect(a).expect("connect for shutdown");
            write_frame(&mut s, r#"{"t":"shutdown"}"#).expect("send shutdown");
            println!("sent shutdown frame to {a}");
        }
    }
    if let Some(h) = handle {
        h.shutdown();
    }

    latencies.sort_by(|a, b| a.total_cmp(b));
    let pct = |q: f64| latencies[((latencies.len() - 1) as f64 * q).round() as usize];
    let jobs = latencies.len();
    let jobs_per_sec = jobs as f64 / (elapsed_ns / 1e9);
    println!(
        "{jobs} jobs ok ({sheds} sheds retried), {round_frames} streamed round frames, \
         all fingerprints bit-identical to in-process runs"
    );
    println!(
        "jobs/sec {jobs_per_sec:>7.1}  latency p50/p99/max {}/{}/{}",
        fmt_ns(pct(0.5)),
        fmt_ns(pct(0.99)),
        fmt_ns(pct(1.0)),
    );
    let json = format!(
        "{{\"bench\":\"serve\",\"smoke\":{},\"clients\":{},\"jobs_per_client\":{},\
         \"jobs\":{},\"workers\":{},\"queue_cap\":{},\"sheds\":{},\"round_frames\":{},\
         \"elapsed_ns\":{:.0},\"jobs_per_sec\":{:.1},\"latency_p50_ns\":{:.0},\
         \"latency_p90_ns\":{:.0},\"latency_p99_ns\":{:.0},\"latency_max_ns\":{:.0},\
         \"bit_identical\":true}}\n",
        smoke,
        clients,
        jobs_per_client,
        jobs,
        workers,
        queue_cap,
        sheds,
        round_frames,
        elapsed_ns,
        jobs_per_sec,
        pct(0.5),
        pct(0.9),
        pct(0.99),
        pct(1.0),
    );
    std::fs::write(out, json).expect("write baseline json");
    println!("wrote {out}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let trace_out = flag("--trace-out");
    match args.first().map(String::as_str) {
        Some("engine") => {
            let out = flag("--out").unwrap_or_else(|| "BENCH_engine.json".to_string());
            engine_baseline(smoke, &out, trace_out.as_deref());
        }
        Some("parallel") => {
            let out = flag("--out").unwrap_or_else(|| "BENCH_parallel.json".to_string());
            parallel_baseline(smoke, &out, trace_out.as_deref());
        }
        Some("golden") => {
            let out = flag("--out")
                .unwrap_or_else(|| "tests/golden/census_path16_metrics.jsonl".to_string());
            golden(check, &out);
        }
        Some("churn") => {
            let out = flag("--out").unwrap_or_else(|| "BENCH_churn.json".to_string());
            churn_baseline(smoke, &out, trace_out.as_deref());
        }
        Some("serve") => {
            let out = flag("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
            let addr = flag("--addr");
            let clients = flag("--clients").map(|c| c.parse().expect("--clients is a count"));
            let jsonl_out = flag("--jsonl-out");
            let send_shutdown = args.iter().any(|a| a == "--shutdown");
            serve_baseline(
                smoke,
                &out,
                addr.as_deref(),
                clients,
                jsonl_out.as_deref(),
                send_shutdown,
            );
        }
        other => {
            eprintln!(
                "usage: fssga-bench engine [--smoke] [--out PATH] [--trace-out PATH]\n\
                 \x20      fssga-bench parallel [--smoke] [--out PATH] [--trace-out PATH]\n\
                 \x20      fssga-bench golden [--check] [--out PATH]\n\
                 \x20      fssga-bench churn [--smoke] [--out PATH] [--trace-out PATH]\n\
                 \x20      fssga-bench serve [--smoke] [--out PATH] [--addr HOST:PORT] \
                 [--clients N] [--jsonl-out PATH] [--shutdown]  \
                 (got {other:?})"
            );
            std::process::exit(2);
        }
    }
}
