//! `fssga-bench` — the recorded performance baselines.
//!
//! ```text
//! fssga-bench engine                  # full baseline, writes BENCH_engine.json
//! fssga-bench engine --smoke          # tiny workloads, CI sanity only
//! fssga-bench engine --out path.json
//! ```
//!
//! The `engine` baseline races the interpreter against the compiled
//! kernel ([`fssga_engine::CompiledKernel`]) on synchronous fixpoint
//! runs at n ≥ 50 000 — census OR-diffusion and shortest-paths
//! relaxation on a torus — and records median wall times plus the
//! speedup. Both engines are bit-identical in trajectory (asserted here
//! on final states), so the speedup is a pure execution-path comparison.

use std::time::Instant;

use fssga_bench::harness::fmt_ns;
use fssga_bench::DEFAULT_SEED;
use fssga_engine::{Budget, Engine, Network, Runner};
use fssga_graph::rng::Xoshiro256;
use fssga_graph::Graph;
use fssga_protocols::census::{Census, FmSketch};
use fssga_protocols::shortest_paths::ShortestPaths;

/// Wall times (ns) and the fixpoint round for one engine on one workload.
struct Timing {
    times_ns: Vec<f64>,
    rounds: usize,
}

impl Timing {
    fn median_ns(&self) -> f64 {
        let mut t = self.times_ns.clone();
        t.sort_by(|a, b| a.total_cmp(b));
        t[t.len() / 2]
    }
}

/// One interpreter-vs-kernel comparison.
struct Row {
    name: String,
    n: usize,
    interp: Timing,
    kernel: Timing,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.interp.median_ns() / self.kernel.median_ns()
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"n\":{},\"rounds\":{},\
             \"interpreter_median_ns\":{:.0},\"kernel_median_ns\":{:.0},\
             \"reps\":{},\"speedup\":{:.2}}}",
            self.name,
            self.n,
            self.interp.rounds,
            self.interp.median_ns(),
            self.kernel.median_ns(),
            self.interp.times_ns.len(),
            self.speedup()
        )
    }
}

/// Times `reps` fixpoint runs of `engine`, returning wall times and the
/// (engine-independent) fixpoint round. `run` must build a fresh network
/// per call; it returns (fixpoint round, final states fingerprint).
fn time_engine(
    reps: usize,
    engine: Engine,
    mut run: impl FnMut(Engine) -> (usize, u64),
) -> (Timing, u64) {
    let mut times_ns = Vec::with_capacity(reps);
    let mut rounds = 0;
    let mut fingerprint = 0;
    for _ in 0..reps {
        let t = Instant::now();
        let (r, f) = run(engine);
        times_ns.push(t.elapsed().as_nanos() as f64);
        rounds = r;
        fingerprint = f;
    }
    (Timing { times_ns, rounds }, fingerprint)
}

/// FNV-1a over state indices: cheap cross-engine equality witness.
fn fingerprint(indices: impl Iterator<Item = usize>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for i in indices {
        h ^= i as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn census_row(g: &Graph, name: &str, reps: usize) -> Row {
    use fssga_engine::StateSpace;
    let mut rng = Xoshiro256::seed_from_u64(DEFAULT_SEED);
    let sketches: Vec<FmSketch<16>> = (0..g.n())
        .map(|_| FmSketch::random_init(&mut rng))
        .collect();
    let run = |engine: Engine| {
        let mut net = Network::new(g, Census::<16>, |v| sketches[v as usize]);
        let report = Runner::new(&mut net)
            .engine(engine)
            .budget(Budget::Fixpoint(10 * g.n()))
            .run();
        (
            report.fixpoint.expect("census converges"),
            fingerprint(net.states().iter().map(|s| s.index())),
        )
    };
    let (interp, fi) = time_engine(reps, Engine::Interpreter, run);
    let (kernel, fk) = time_engine(reps, Engine::Kernel, run);
    assert_eq!(fi, fk, "engines must agree on final states");
    assert_eq!(interp.rounds, kernel.rounds, "engines must agree on rounds");
    Row {
        name: name.to_string(),
        n: g.n(),
        interp,
        kernel,
    }
}

fn shortest_paths_row(g: &Graph, name: &str, reps: usize) -> Row {
    use fssga_engine::StateSpace;
    const CAP: usize = 256;
    let run = |engine: Engine| {
        let mut net = Network::new(g, ShortestPaths::<CAP>, |v| {
            ShortestPaths::<CAP>::init(v == 0)
        });
        let report = Runner::new(&mut net)
            .engine(engine)
            .budget(Budget::Fixpoint(8 * CAP))
            .run();
        (
            report.fixpoint.expect("relaxation converges"),
            fingerprint(net.states().iter().map(|s| s.index())),
        )
    };
    let (interp, fi) = time_engine(reps, Engine::Interpreter, run);
    let (kernel, fk) = time_engine(reps, Engine::Kernel, run);
    assert_eq!(fi, fk, "engines must agree on final states");
    assert_eq!(interp.rounds, kernel.rounds, "engines must agree on rounds");
    Row {
        name: name.to_string(),
        n: g.n(),
        interp,
        kernel,
    }
}

fn engine_baseline(smoke: bool, out: &str) {
    use fssga_graph::generators;
    // Torus keeps every degree at 4 while the diameter (≈ side) sets the
    // number of rounds; side 224 puts n just past the 50k floor.
    let (side, reps) = if smoke { (32, 1) } else { (224, 5) };
    let g = generators::torus(side, side);
    println!(
        "engine baseline: torus {side}x{side} (n = {}), {reps} rep(s) per engine",
        g.n()
    );
    let rows = [
        census_row(&g, &format!("census/torus-{side}x{side}"), reps),
        shortest_paths_row(&g, &format!("shortest-paths/torus-{side}x{side}"), reps),
    ];
    for row in &rows {
        println!(
            "{:<36} n={:<6} rounds={:<4} interp {:>12} kernel {:>12} speedup {:>6.2}x",
            row.name,
            row.n,
            row.interp.rounds,
            fmt_ns(row.interp.median_ns()),
            fmt_ns(row.kernel.median_ns()),
            row.speedup()
        );
    }
    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    let json = format!(
        "{{\"bench\":\"engine\",\"smoke\":{},\"workloads\":[{}]}}\n",
        smoke,
        body.join(",")
    );
    std::fs::write(out, json).expect("write baseline json");
    println!("wrote {out}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    match args.first().map(String::as_str) {
        Some("engine") => engine_baseline(smoke, &out),
        other => {
            eprintln!("usage: fssga-bench engine [--smoke] [--out PATH]  (got {other:?})");
            std::process::exit(2);
        }
    }
}
