//! Fault-injection campaigns across the workspace: timed fault plans, the
//! sensitivity injector, and end-to-end "reasonably correct" verdicts.

use fssga::engine::faults::{FaultEvent, FaultKind, FaultPlan};
use fssga::engine::sensitivity::FaultInjector;
use fssga::engine::{Network, SyncScheduler};
use fssga::graph::rng::Xoshiro256;
use fssga::graph::{exact, generators};
use fssga::protocols::census::{Census, FmSketch};
use fssga::protocols::greedy_tourist::GreedyTourist;
use fssga::protocols::shortest_paths::{labels_as_distances, ShortestPaths};

#[test]
fn timed_fault_plan_drives_a_census_run() {
    let mut rng = Xoshiro256::seed_from_u64(2001);
    let g = generators::grid(6, 6);
    let sketches: Vec<FmSketch<16>> = (0..g.n())
        .map(|_| FmSketch::random_init(&mut rng))
        .collect();
    let mut net = Network::new(&g, Census::<16>, |v| sketches[v as usize]);
    let mut plan = FaultPlan::new(vec![
        FaultEvent {
            time: 2,
            kind: FaultKind::Edge(0, 1),
        },
        FaultEvent {
            time: 3,
            kind: FaultKind::Node(35),
        },
        FaultEvent {
            time: 5,
            kind: FaultKind::Edge(10, 16),
        },
    ]);
    for round in 0..40u64 {
        plan.apply_due(&mut net, round);
        net.sync_step(&mut rng);
    }
    assert_eq!(plan.remaining(), 0);
    assert!(!net.graph().is_alive(35));
    // The remaining connected body still agrees on one estimate.
    let comp = net.graph().component_of(0);
    let est0 = net.state(0).estimate();
    for &v in &comp {
        assert_eq!(net.state(v).estimate(), est0);
    }
}

#[test]
fn injector_respects_critical_sets_end_to_end() {
    // Run the greedy tourist with the generic injector sparing its agent:
    // every campaign must end reasonably correct.
    for seed in 0..5u64 {
        let mut rng = Xoshiro256::seed_from_u64(3000 + seed);
        let g = generators::connected_gnp(20, 0.18, &mut rng);
        let mut tour = GreedyTourist::new(&g, 0);
        let mut injector = FaultInjector::new(0.4, 0.5, 3);
        // Interleave short runs with injections.
        for _ in 0..6 {
            let _ = tour.run(40, &mut rng);
            let agent = tour.agent();
            let critical = move |_: &Network<_>| vec![agent];
            // The injector API works over Network<P>; drive it manually.
            let net = tour.network_mut();
            let _ = injector.try_inject(net, &critical, &mut rng);
        }
        let run = tour.run(10_000_000, &mut rng);
        assert!(run.complete, "seed {seed}: campaign must stay correct");
    }
}

#[test]
fn shortest_paths_survive_heavy_edge_loss() {
    // Remove a third of the edges (keeping the sink's component) — labels
    // still converge to the exact distances of whatever remains.
    let mut rng = Xoshiro256::seed_from_u64(2002);
    let g = generators::connected_gnp(40, 0.2, &mut rng);
    let mut net = Network::new(&g, ShortestPaths::<128>, |v| {
        ShortestPaths::<128>::init(v == 0)
    });
    SyncScheduler::run_to_fixpoint(&mut net, 600).unwrap();
    let mut removed = 0;
    let target = g.m() / 3;
    while removed < target {
        let edges: Vec<_> = net.graph().edges().collect();
        let &(u, v) = rng.choose(&edges);
        let mut probe = net.graph().clone();
        probe.remove_edge(u, v);
        if probe.component_of(0).len() == probe.n_alive() {
            net.remove_edge(u, v);
            removed += 1;
        }
    }
    SyncScheduler::run_to_fixpoint(&mut net, 600).expect("re-converges");
    let snapshot = net.graph().snapshot();
    assert_eq!(
        labels_as_distances(net.states()),
        exact::bfs_distances(&snapshot, &[0])
    );
}

#[test]
fn node_faults_never_resurrect() {
    // The decreasing-benign model: once dead, a node stays dead and
    // invisible, across every code path that touches the graph.
    let g = generators::complete(8);
    let mut net = Network::new(&g, Census::<8>, |_| FmSketch::empty());
    net.remove_node(3);
    let mut rng = Xoshiro256::seed_from_u64(2003);
    for _ in 0..10 {
        net.sync_step(&mut rng);
        assert!(!net.graph().is_alive(3));
        assert!(net
            .graph()
            .alive_nodes()
            .all(|v| { !net.graph().neighbors(v).contains(&3) }));
    }
}
