//! Fault-injection campaigns across the workspace: timed fault plans, the
//! sensitivity injector, and end-to-end "reasonably correct" verdicts.

use fssga::engine::campaign::{Campaign, CampaignTrace, RunPolicy};
use fssga::engine::faults::{FaultEvent, FaultKind, FaultPlan};
use fssga::engine::sensitivity::{FaultInjector, Verdict};
use fssga::engine::{AsyncPolicy, Budget, Network, Runner};
use fssga::graph::rng::Xoshiro256;
use fssga::graph::{exact, generators, DynGraph, Graph};
use fssga::protocols::census::{Census, FmSketch};
use fssga::protocols::greedy_tourist::GreedyTourist;
use fssga::protocols::shortest_paths::{labels_as_distances, ShortestPaths};

#[test]
fn timed_fault_plan_drives_a_census_run() {
    let mut rng = Xoshiro256::seed_from_u64(2001);
    let g = generators::grid(6, 6);
    let sketches: Vec<FmSketch<16>> = (0..g.n())
        .map(|_| FmSketch::random_init(&mut rng))
        .collect();
    let mut net = Network::new(&g, Census::<16>, |v| sketches[v as usize]);
    let mut plan = FaultPlan::new(vec![
        FaultEvent {
            time: 2,
            kind: FaultKind::Edge(0, 1),
        },
        FaultEvent {
            time: 3,
            kind: FaultKind::Node(35),
        },
        FaultEvent {
            time: 5,
            kind: FaultKind::Edge(10, 16),
        },
    ]);
    for round in 0..40u64 {
        plan.apply_due(&mut net, round);
        net.sync_step(&mut rng);
    }
    assert_eq!(plan.remaining(), 0);
    assert!(!net.graph().is_alive(35));
    // The remaining connected body still agrees on one estimate.
    let comp = net.graph().component_of(0);
    let est0 = net.state(0).estimate();
    for &v in &comp {
        assert_eq!(net.state(v).estimate(), est0);
    }
}

#[test]
fn injector_respects_critical_sets_end_to_end() {
    // Run the greedy tourist with the generic injector sparing its agent:
    // every campaign must end reasonably correct.
    for seed in 0..5u64 {
        let mut rng = Xoshiro256::seed_from_u64(3000 + seed);
        let g = generators::connected_gnp(20, 0.18, &mut rng);
        let mut tour = GreedyTourist::new(&g, 0);
        let mut injector = FaultInjector::new(0.4, 0.5, 3);
        // Interleave short runs with injections.
        for _ in 0..6 {
            let _ = tour.run(40, &mut rng);
            let agent = tour.agent();
            let critical = move |_: &Network<_>| vec![agent];
            // The injector API works over Network<P>; drive it manually.
            let net = tour.network_mut();
            let _ = injector.try_inject(net, &critical, &mut rng);
        }
        let run = tour.run(10_000_000, &mut rng);
        assert!(run.complete, "seed {seed}: campaign must stay correct");
    }
}

#[test]
fn shortest_paths_survive_heavy_edge_loss() {
    // Remove a third of the edges (keeping the sink's component) — labels
    // still converge to the exact distances of whatever remains.
    let mut rng = Xoshiro256::seed_from_u64(2002);
    let g = generators::connected_gnp(40, 0.2, &mut rng);
    let mut net = Network::new(&g, ShortestPaths::<128>, |v| {
        ShortestPaths::<128>::init(v == 0)
    });
    Runner::new(&mut net)
        .budget(Budget::Fixpoint(600))
        .run()
        .fixpoint
        .unwrap();
    let mut removed = 0;
    let target = g.m() / 3;
    while removed < target {
        let edges: Vec<_> = net.graph().edges().collect();
        let &(u, v) = rng.choose(&edges);
        let mut probe = net.graph().clone();
        probe.remove_edge(u, v);
        if probe.component_of(0).len() == probe.n_alive() {
            net.remove_edge(u, v);
            removed += 1;
        }
    }
    Runner::new(&mut net)
        .budget(Budget::Fixpoint(600))
        .run()
        .fixpoint
        .expect("re-converges");
    let snapshot = net.graph().snapshot();
    assert_eq!(
        labels_as_distances(net.states()),
        exact::bfs_distances(&snapshot, &[0])
    );
}

/// A census campaign over `g` with fixed per-node sketches, read out at
/// node 0 and judged against the component union on the snapshot chain.
fn census_campaign(g: &Graph, sketches: Vec<FmSketch<12>>) -> Campaign<'static, Census<12>, u16> {
    let reference = sketches.clone();
    Campaign::new(
        g,
        || Census::<12>,
        move |v| sketches[v as usize],
        |net: &Network<Census<12>>| net.graph().is_alive(0).then(|| net.state(0).0),
        move |g: &Graph| {
            let d = DynGraph::from_graph(g);
            d.component_of(0)
                .into_iter()
                .fold(0u16, |acc, v| acc | reference[v as usize].0)
        },
    )
}

#[test]
fn trace_replay_is_deterministic_across_policies() {
    // Same seed + same campaign ⇒ identical trace (schedule, activation
    // order, verdict), under sync and all three async policies; and the
    // serialized trace replays bit-for-bit.
    let mut rng = Xoshiro256::seed_from_u64(2004);
    let g = generators::grid(4, 5);
    let sketches: Vec<FmSketch<12>> = (0..g.n())
        .map(|_| FmSketch::random_init(&mut rng))
        .collect();
    let plan = FaultPlan::new(vec![
        FaultEvent {
            time: 1,
            kind: FaultKind::Edge(0, 1),
        },
        FaultEvent {
            time: 4,
            kind: FaultKind::Node(13),
        },
    ]);
    for policy in [
        RunPolicy::Sync,
        RunPolicy::Async(AsyncPolicy::UniformRandom),
        RunPolicy::Async(AsyncPolicy::RoundRobin),
        RunPolicy::Async(AsyncPolicy::RandomPermutation),
    ] {
        let campaign = census_campaign(&g, sketches.clone())
            .policy(policy)
            .horizon(30)
            .seed(99)
            .plan(plan.clone());
        let first = campaign.run();
        let second = campaign.run();
        assert_eq!(first.trace, second.trace, "{policy:?}: runs must agree");
        assert_eq!(first.verdict, second.verdict);

        // Through the text format and back.
        let text = first.trace.to_text();
        let parsed = CampaignTrace::from_text(&text).expect("parses");
        assert_eq!(parsed, first.trace, "{policy:?}: text round-trip");

        // Replaying the emitted trace reproduces it bit-for-bit.
        let replayed = campaign.replay(&parsed);
        assert_eq!(replayed.trace, first.trace, "{policy:?}: replay");
        assert_eq!(replayed.verdict, first.verdict);
    }
}

#[test]
fn broken_campaign_shrinks_to_one_minimal_schedule() {
    // A deliberately broken oracle: it insists on the *initial* graph's
    // census no matter what dies, so any fault that actually hides bits
    // from node 0 yields Incorrect. Buried in a noisy schedule sits one
    // decisive cut; the shrinker must isolate a 1-minimal counterexample
    // and the replayed trace must reproduce the verdict.
    let mut rng = Xoshiro256::seed_from_u64(2005);
    let g = generators::path(10);
    let sketches: Vec<FmSketch<12>> = (0..g.n())
        .map(|_| FmSketch::random_init(&mut rng))
        .collect();
    let full_union = sketches.iter().fold(0u16, |acc, s| acc | s.0);
    let broken = Campaign::new(
        &g,
        || Census::<12>,
        {
            let sketches = sketches.clone();
            move |v| sketches[v as usize]
        },
        |net: &Network<Census<12>>| net.graph().is_alive(0).then(|| net.state(0).0),
        move |_: &Graph| full_union,
    )
    .horizon(25)
    .plan(FaultPlan::new(vec![
        FaultEvent {
            time: 0,
            kind: FaultKind::Edge(4, 5), // decisive: cuts 0 off early
        },
        FaultEvent {
            time: 6,
            kind: FaultKind::Edge(7, 8), // noise: union already settled
        },
        FaultEvent {
            time: 9,
            kind: FaultKind::Node(9), // noise
        },
        FaultEvent {
            time: 12,
            kind: FaultKind::Edge(1, 2), // noise: both sides converged
        },
    ]));
    let outcome = broken.run();
    assert_eq!(outcome.verdict, Verdict::Incorrect);

    let shrunk = broken.shrink().expect("failing campaign must shrink");
    assert_eq!(
        shrunk.schedule.len(),
        1,
        "1-minimal counterexample expected, got {:?}",
        shrunk.schedule
    );
    // 1-minimality, checked against the deterministic campaign itself:
    // the shrunk schedule fails, the empty schedule does not.
    assert_eq!(
        broken.run_with_schedule(&shrunk.schedule).verdict,
        Verdict::Incorrect
    );
    assert_eq!(
        broken.run_with_schedule(&[]).verdict,
        Verdict::ReasonablyCorrect
    );

    // The emitted trace of the shrunk run replays bit-for-bit.
    let minimal = broken.run_with_schedule(&shrunk.schedule);
    let replayed = broken.replay(&minimal.trace);
    assert_eq!(replayed.trace, minimal.trace);
    assert_eq!(replayed.verdict, Verdict::Incorrect);
}

#[test]
fn node_faults_never_resurrect() {
    // The decreasing-benign model: once dead, a node stays dead and
    // invisible, across every code path that touches the graph.
    let g = generators::complete(8);
    let mut net = Network::new(&g, Census::<8>, |_| FmSketch::empty());
    net.remove_node(3);
    let mut rng = Xoshiro256::seed_from_u64(2003);
    for _ in 0..10 {
        net.sync_step(&mut rng);
        assert!(!net.graph().is_alive(3));
        assert!(net
            .graph()
            .alive_nodes()
            .all(|v| { !net.graph().neighbors(v).contains(&3) }));
    }
}
