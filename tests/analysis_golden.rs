//! Golden tests for the static analyzer, driven through the `fssga`
//! facade: the shipped set must lint clean, and injected violations must
//! be caught with replayable witnesses — the same pass that makes
//! `fssga-lint` exit non-zero.

use fssga::analysis::{deadcode, lint, sm_audit, totality, Severity};
use fssga::core::modthresh::{ModThreshProgram, Prop};
use fssga::core::SeqProgram;

/// The entire shipped set — every library program and every protocol —
/// is lint-clean. This is exactly what the `fssga-lint` CI gate enforces.
#[test]
fn shipped_set_is_lint_clean() {
    let report = lint::lint_all();
    assert!(report.is_clean(), "shipped set must lint clean:\n{report}");
}

/// §4.1 golden case: the paper's two-colouring decision list has no dead
/// clauses and every clause carries a live witness.
#[test]
fn paper_two_coloring_has_no_dead_clauses() {
    let mt = fssga::core::library::two_coloring_blank_mt();
    let report = deadcode::audit_mt("two_coloring_blank_mt", &mt, lint::MT_LIMIT);
    assert!(report.is_clean(), "{report}");
}

/// Injected dead clause: a clause fully shadowed by an earlier, weaker
/// guard is flagged as an error, and the printed report carries the
/// witness multiset that proves the shadowing.
#[test]
fn injected_dead_clause_is_flagged_with_witness() {
    let clauses = vec![
        (Prop::at_least(0, 1), 1), // fires whenever state 0 present
        (Prop::at_least(0, 2), 0), // shadowed: strictly stronger guard
    ];
    let mt = ModThreshProgram::new(2, 2, clauses, 0).unwrap();
    let report = deadcode::audit_mt("injected", &mt, lint::MT_LIMIT);
    assert!(!report.is_clean(), "shadowed clause must be an error");
    let rendered = format!("{report}");
    assert!(
        rendered.contains("witness"),
        "report must print the shadowing witness:\n{rendered}"
    );
    // The same report drives the binary's non-zero exit.
    assert!(report.error_count() >= 1);
}

/// Injected non-SM program: the left-projection automaton (output =
/// first input) is order-sensitive; the audit must reject it with a
/// minimal witness whose two orderings replay to different outputs.
#[test]
fn injected_non_sm_program_is_rejected_with_minimal_witness() {
    // States 0,1,2: w0 = 2 ("empty"); first input is latched forever.
    let p = vec![
        0, 0, // from state 0 (latched 0)
        1, 1, // from state 1 (latched 1)
        0, 1, // from the initial state: latch the input
    ];
    let beta = vec![0, 1, 0];
    let seq = SeqProgram::new(2, 3, 2, 2, p, beta).unwrap();
    let witness = sm_audit::check_seq_sm(&seq).expect_err("left projection is not SM");
    assert_eq!(witness.len(), 2, "minimal witness is a bare swapped pair");
    assert_ne!(
        seq.eval_seq(&witness.sequence_ab()),
        seq.eval_seq(&witness.sequence_ba()),
        "witness must replay"
    );
    let report = sm_audit::audit_seq("injected", &seq);
    assert_eq!(report.error_count(), 1);
    assert!(format!("{report}").contains("witness"));
}

/// Injected partiality: a decision list with no default arm is a totality
/// error.
#[test]
fn injected_missing_default_is_flagged() {
    let raw = totality::RawDecisionList {
        num_inputs: 2,
        num_outputs: 2,
        clauses: vec![(Prop::at_least(0, 1), 1)],
        default: None,
    };
    let report = totality::audit_decision_list("injected", &raw);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.severity == Severity::Error));
}

/// The blow-up table is complete for the shipped library and every row
/// that finished its cycle satisfies the Lemma 3.5 bound par == roundtrip.
#[test]
fn blowup_accounting_is_complete() {
    let rows = lint::blowup_table();
    assert!(rows.len() >= 10);
    for row in &rows {
        assert!(row.min_states <= row.seq_states, "{}", row.name);
        if let (Some(par), Some(back)) = (row.par_states, row.roundtrip_seq_states) {
            assert!(back >= row.min_states, "{}", row.name);
            assert!(par >= 1, "{}", row.name);
        }
    }
}
