//! Cross-crate integration: every distributed algorithm checked against
//! the centralized oracles on shared random workloads, plus protocol
//! compositions (synchronizer ∘ protocol, compiled tables ∘ engine).

use fssga::core::multiset::Multiset;
use fssga::engine::compile::compile_protocol;
use fssga::engine::interp::InterpNetwork;
use fssga::engine::{AsyncPolicy, Budget, Network, Policy, Runner, StateSpace};
use fssga::graph::rng::Xoshiro256;
use fssga::graph::{exact, generators};
use fssga::protocols::bfs::{run_bfs, Status};
use fssga::protocols::bridges::BridgeWalk;
use fssga::protocols::census::{Census, FmSketch};
use fssga::protocols::election::ElectionHarness;
use fssga::protocols::greedy_tourist::GreedyTourist;
use fssga::protocols::shortest_paths::{labels_as_distances, ShortestPaths};
use fssga::protocols::synchronizer::alpha_network;
use fssga::protocols::traversal::TraversalHarness;
use fssga::protocols::two_coloring::{outcome, ColoringOutcome, TwoColoring};

#[test]
fn the_whole_portfolio_on_one_shared_graph() {
    // One topology, every algorithm: the "does the workspace compose"
    // test. A 6x6 grid with a chord-ish random overlay.
    let mut rng = Xoshiro256::seed_from_u64(1001);
    let g = generators::connected_gnp(36, 0.12, &mut rng);

    // 1. Census.
    let sketches: Vec<FmSketch<16>> = (0..g.n())
        .map(|_| FmSketch::random_init(&mut rng))
        .collect();
    let mut census = Network::new(&g, Census::<16>, |v| sketches[v as usize]);
    Runner::new(&mut census)
        .budget(Budget::Fixpoint(10 * g.n()))
        .run()
        .fixpoint
        .unwrap();
    let est = census.state(0).estimate();
    assert!(
        (4.0..=600.0).contains(&est),
        "estimate {est} wildly off for n=36"
    );

    // 2. Two-colouring agrees with the oracle.
    let mut col = Network::new(&g, TwoColoring, |v| TwoColoring::init(v == 0));
    Runner::new(&mut col)
        .budget(Budget::Fixpoint(10 * g.n()))
        .run()
        .fixpoint
        .unwrap();
    let bip = exact::bipartition(&g).is_some();
    assert_eq!(
        outcome(col.states()) == ColoringOutcome::ProperColoring,
        bip
    );

    // 3. Shortest paths match BFS.
    let mut sp = Network::new(&g, ShortestPaths::<128>, |v| {
        ShortestPaths::<128>::init(v == 0)
    });
    Runner::new(&mut sp)
        .budget(Budget::Fixpoint(600))
        .run()
        .fixpoint
        .unwrap();
    assert_eq!(
        labels_as_distances(sp.states()),
        exact::bfs_distances(&g, &[0])
    );

    // 4. FSSGA BFS finds the farthest node.
    let far = (0..g.n() as u32)
        .max_by_key(|&v| exact::bfs_distances(&g, &[0])[v as usize])
        .unwrap();
    let (status, _, _) = run_bfs(&g, 0, &[far], 40 * g.n()).unwrap();
    assert_eq!(status, Status::Found);

    // 5. Bridge walk matches Tarjan.
    let mut walk = BridgeWalk::new(&g, 0);
    walk.run(BridgeWalk::recommended_steps(&g, 2.0), &mut rng);
    assert_eq!(walk.candidate_bridges(), exact::bridges(&g));

    // 6. Milgram traversal visits everything with 2n-2 moves.
    let mut trav = TraversalHarness::new(&g, 0);
    let run = trav.run(200_000, &mut rng, true);
    assert!(run.complete);
    assert_eq!(run.hand_moves, 2 * (g.n() as u64 - 1));

    // 7. Greedy tourist visits everything.
    let mut tour = GreedyTourist::new(&g, 0);
    let run = tour.run(10_000_000, &mut rng);
    assert!(run.complete);

    // 8. Leader election terminates with one leader.
    let mut elec = ElectionHarness::new(&g);
    let run = elec.run(2_000_000, &mut rng);
    assert!(run.leader.is_some());
}

#[test]
fn alpha_synchronizer_composes_with_census() {
    // Composition: the census protocol, alpha-wrapped, run under a fully
    // asynchronous uniform-random schedule, still converges to the union.
    let mut rng = Xoshiro256::seed_from_u64(1002);
    let g = generators::grid(6, 6);
    let sketches: Vec<FmSketch<8>> = (0..g.n())
        .map(|_| FmSketch::random_init(&mut rng))
        .collect();
    let expected = sketches
        .iter()
        .fold(FmSketch::<8>::empty(), |a, &b| a.union(b));
    let mut net = alpha_network(&g, Census::<8>, |v| sketches[v as usize]);
    Runner::new(&mut net)
        .policy(Policy::Async(AsyncPolicy::UniformRandom))
        .budget(Budget::Steps(300 * g.n()))
        .rng(&mut rng)
        .run();
    assert!(net.states().iter().all(|s| s.cur == expected));
}

#[test]
fn compiled_protocol_network_equals_native_network() {
    // The compile -> interp path and the native engine agree on a
    // multi-round probabilistic execution (random walk protocol).
    use fssga::protocols::random_walk::{RandomWalk, WalkState};
    let auto = compile_protocol(&RandomWalk, 1 << 22).unwrap();
    let g = generators::connected_gnp(14, 0.3, &mut Xoshiro256::seed_from_u64(5));
    let init = |v: u32| {
        if v == 0 {
            WalkState::Flip
        } else {
            WalkState::Blank
        }
    };
    let mut native = Network::new(&g, RandomWalk, init);
    let mut interp = InterpNetwork::new(&g, &auto, |v| init(v).index());
    for round in 0..200 {
        native.sync_step_seeded(round * 3 + 1);
        interp.sync_step_seeded(round * 3 + 1);
        let ids: Vec<usize> = native.states().iter().map(|s| s.index()).collect();
        assert_eq!(&ids, interp.states(), "round {round}");
    }
}

#[test]
fn engine_transition_equals_core_multiset_semantics() {
    // The engine's tally-based activation computes exactly the formal
    // f[q](multiset) of Definition 3.10, for every node of a random graph.
    let auto = compile_protocol(&TwoColoring, 1 << 16).unwrap();
    let mut rng = Xoshiro256::seed_from_u64(7);
    let g = generators::connected_gnp(25, 0.15, &mut rng);
    let mut net = Network::new(&g, TwoColoring, |v| TwoColoring::init(v % 5 == 0));
    for _ in 0..3 {
        // Compare next states computed by the formal model...
        let formal: Vec<usize> = (0..g.n() as u32)
            .map(|v| {
                let ms: Multiset = net.multiset_of(v);
                auto.transition(net.state(v).index(), 0, &ms)
            })
            .collect();
        // ...with the engine's synchronous step.
        net.sync_step_seeded(0);
        let got: Vec<usize> = net.states().iter().map(|s| s.index()).collect();
        assert_eq!(formal, got);
    }
}

#[test]
fn deterministic_replay_across_runs() {
    // Same seed => bit-identical election, including its length.
    let g = generators::grid(4, 4);
    let runs: Vec<(u64, Option<u32>)> = (0..2)
        .map(|_| {
            let mut h = ElectionHarness::new(&g);
            let mut rng = Xoshiro256::seed_from_u64(99);
            let r = h.run(500_000, &mut rng);
            (r.rounds, r.leader)
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
}
