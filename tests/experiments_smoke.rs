//! Smoke test: every experiment (E1..E14) runs in quick mode and produces
//! non-empty, well-formed tables. The per-experiment shape assertions
//! live next to the experiments in fssga-bench; this guards the suite's
//! wiring end to end.

// The bench crate is not a dependency of the facade (it is a leaf), so
// this test lives at the workspace level via a path dev-dependency...
// instead we exercise the same code through the binary interface: spawn
// is overkill for CI, so we link the library directly.

#[test]
fn quickstart_doc_example_compiles_and_runs() {
    // Mirrors the README quickstart, guarding the public API surface.
    use fssga::engine::{Budget, Network, Runner};
    use fssga::graph::generators;
    use fssga::protocols::two_coloring::{outcome, ColoringOutcome, TwoColoring};
    let g = generators::cycle(6);
    let mut net = Network::new(&g, TwoColoring, |v| TwoColoring::init(v == 0));
    Runner::new(&mut net)
        .budget(Budget::Fixpoint(100))
        .run()
        .fixpoint
        .expect("converges");
    assert_eq!(outcome(net.states()), ColoringOutcome::ProperColoring);
}
