//! Every protocol's declared query bounds (`MAX_THRESHOLD`, `MODULI_LCM`)
//! must dominate what it actually asks — the α synchronizer's inner-view
//! synthesis silently relies on this, so dishonest declarations would be
//! a miscompilation. The recorder makes the check mechanical.

use fssga::engine::{Budget, Network, Protocol, Runner};
use fssga::graph::generators;
use fssga::graph::rng::Xoshiro256;

fn assert_honest<P: Protocol>(protocol: P, init: impl Fn(u32) -> P::State, rounds: usize) {
    let mut rng = Xoshiro256::seed_from_u64(0xB0B);
    let g = generators::connected_gnp(24, 0.2, &mut rng);
    let mut net = Network::new(&g, protocol, &init);
    net.enable_recording();
    let _ = Runner::new(&mut net)
        .budget(Budget::Fixpoint(rounds))
        .rng(&mut rng)
        .run()
        .fixpoint;
    let rec = net.recorded_queries().unwrap();
    for (q, &t) in rec.thresholds.iter().enumerate() {
        assert!(
            t <= u64::from(P::MAX_THRESHOLD),
            "state {q}: recorded threshold {t} > declared {}",
            P::MAX_THRESHOLD
        );
    }
    for (q, &m) in rec.moduli.iter().enumerate() {
        assert!(
            u64::from(P::MODULI_LCM) % m == 0,
            "state {q}: recorded modulus {m} does not divide declared {}",
            P::MODULI_LCM
        );
    }
}

#[test]
fn all_protocol_declarations_are_honest() {
    use fssga::protocols::bfs::{Bfs, BfsState};
    use fssga::protocols::census::{Census, FmSketch};
    use fssga::protocols::election::{ElectState, Election};
    use fssga::protocols::random_walk::{RandomWalk, WalkState};
    use fssga::protocols::shortest_paths::ShortestPaths;
    use fssga::protocols::traversal::{TravState, Traversal};
    use fssga::protocols::two_coloring::TwoColoring;

    assert_honest(TwoColoring, |v| TwoColoring::init(v == 0), 50);
    assert_honest(Census::<6>, |v| FmSketch::<6>((v % 13) as u16 & 0x3F), 50);
    assert_honest(
        ShortestPaths::<64>,
        |v| ShortestPaths::<64>::init(v == 0),
        200,
    );
    assert_honest(Bfs, |v| BfsState::init(v == 0, v == 9), 100);
    assert_honest(
        RandomWalk,
        |v| {
            if v == 0 {
                WalkState::Flip
            } else {
                WalkState::Blank
            }
        },
        150,
    );
    assert_honest(Traversal, |v| TravState::init(v == 0), 300);
    assert_honest(Election, |_| ElectState::init(), 300);
}
