//! Incremental kernel repair vs full rebuild under streaming churn.
//!
//! The compiled kernel mirrors every arrival and departure in place —
//! slack-growth CSR rows, dirty-set rescheduling, occasional compaction.
//! This suite drives a ~10k-event mixed arrival/departure
//! [`ChurnStream`] through every protocol in the workspace twice: once
//! on the incremental path, and once on a twin that calls
//! [`Network::rebuild_kernel`] (a from-scratch CSR with every node
//! scheduled) after each churn batch — plus an uncompiled interpreter
//! twin as the semantic arbiter. States must agree across all three
//! after every round: the in-place mirror updates (and the compiled
//! kernel itself) must be semantically invisible.

use fssga::engine::rng::Xoshiro256;
use fssga::engine::{ChurnConfig, ChurnStream, Network, Protocol};
use fssga::graph::{generators, DynGraph, NodeId};
use fssga::protocols::bfs::{Bfs, BfsState};
use fssga::protocols::census::{Census, FmSketch};
use fssga::protocols::election::{ElectState, Election};
use fssga::protocols::firing_squad::{FiringSquad, FsspState};
use fssga::protocols::greedy_tourist::{TourLabel, TouristBfs};
use fssga::protocols::parity::{KParity, ParityState};
use fssga::protocols::random_walk::{RandomWalk, WalkState};
use fssga::protocols::shortest_paths::ShortestPaths;
use fssga::protocols::synchronizer::{Alpha, AlphaState};
use fssga::protocols::traversal::{TravState, Traversal};
use fssga::protocols::two_coloring::TwoColoring;
use fssga::protocols::unison::{KUnison, UnisonState};

/// The shared event stream: a mixed arrival/departure churn over a
/// 16x16 torus, dense enough to exceed 10k scheduled events. Node 0 is
/// protected because several protocols pin their source / agent there.
fn stream() -> (fssga::graph::Graph, ChurnStream) {
    let g = generators::torus(16, 16);
    let s = ChurnStream::generate(
        &DynGraph::from_graph(&g),
        &ChurnConfig {
            seed: 0xC0FF_EE07,
            horizon: 500,
            rate: 21.0,
            protected: vec![0],
            ..ChurnConfig::default()
        },
    );
    assert!(s.len() >= 10_000, "stream too small: {}", s.len());
    (g, s)
}

/// Replays `stream` on three identical networks in lockstep: `a` repairs
/// its kernel incrementally, `b` rebuilds it from scratch after every
/// round that applied at least one event, and `c` runs the uncompiled
/// interpreter as the semantic arbiter. All draw the same round seeds.
/// States must be bit-identical across all three after every round.
fn lockstep_under_churn<P: Protocol>(
    name: &str,
    mut a: Network<P>,
    mut b: Network<P>,
    mut c: Network<P>,
    init: impl Fn(NodeId) -> P::State + Copy,
    stream: &ChurnStream,
) {
    let mut plan_a = stream.plan();
    let mut plan_b = stream.plan();
    let mut plan_c = stream.plan();
    let mut rng = Xoshiro256::seed_from_u64(stream.seed());
    for round in 0..stream.horizon() {
        plan_a.apply_due_with(&mut a, round, init);
        let applied = plan_b.apply_due_with(&mut b, round, init);
        plan_c.apply_due_with(&mut c, round, init);
        if applied > 0 {
            b.rebuild_kernel();
        }
        let seed = rng.next_u64();
        let ca = a.sync_step_kernel_seeded(seed);
        let cb = b.sync_step_kernel_seeded(seed);
        let cc = c.sync_step_seeded(seed);
        assert_eq!(
            (ca, cb),
            (cb, cc),
            "{name}: change counts diverged at round {round} (applied={applied})"
        );
        assert_eq!(
            a.states(),
            b.states(),
            "{name}: incremental vs rebuilt kernel states diverged at round {round}"
        );
        assert_eq!(
            a.states(),
            c.states(),
            "{name}: kernel vs interpreter states diverged at round {round}"
        );
        assert_eq!(
            (a.graph().n_alive(), a.graph().m()),
            (b.graph().n_alive(), b.graph().m()),
            "{name}: topology diverged at round {round}"
        );
        // Structural audit of the incrementally-repaired arena: row
        // bounds, disjointness, capacity/dead-space conservation, and
        // the compaction threshold — every round, not just at the end.
        if let Some(k) = a.kernel() {
            k.validate_arena();
        }
    }
    assert!(
        a.graph().n_alive() > 0,
        "{name}: churn annihilated the network — stream too hot for the test"
    );
}

fn census_sketch(v: NodeId) -> FmSketch<8> {
    let mut rng = Xoshiro256::seed_from_u64(0xABCD ^ (v as u64).wrapping_mul(0x9E37_79B9));
    FmSketch::random_init(&mut rng)
}

#[test]
fn all_protocols_repair_bit_identically_under_churn() {
    let (g, s) = stream();
    let last = g.n() as NodeId - 1;

    let init = |v: NodeId| TwoColoring::init(v == 0);
    lockstep_under_churn(
        "two-coloring",
        Network::new_compiled(&g, TwoColoring, init),
        Network::new_compiled(&g, TwoColoring, init),
        Network::new(&g, TwoColoring, init),
        init,
        &s,
    );

    lockstep_under_churn(
        "census",
        Network::new_compiled(&g, Census::<8>, census_sketch),
        Network::new_compiled(&g, Census::<8>, census_sketch),
        Network::new(&g, Census::<8>, census_sketch),
        census_sketch,
        &s,
    );

    let init = |v: NodeId| ShortestPaths::<32>::init(v == 0);
    lockstep_under_churn(
        "shortest-paths",
        Network::new_compiled(&g, ShortestPaths::<32>, init),
        Network::new_compiled(&g, ShortestPaths::<32>, init),
        Network::new(&g, ShortestPaths::<32>, init),
        init,
        &s,
    );

    let init = |v: NodeId| AlphaState::init(TwoColoring::init(v == 0));
    lockstep_under_churn(
        "alpha-synchronizer",
        Network::new_compiled(&g, Alpha(TwoColoring), init),
        Network::new_compiled(&g, Alpha(TwoColoring), init),
        Network::new(&g, Alpha(TwoColoring), init),
        init,
        &s,
    );

    let init = move |v: NodeId| BfsState::init(v == 0, v == last);
    lockstep_under_churn(
        "bfs",
        Network::new_compiled(&g, Bfs, init),
        Network::new_compiled(&g, Bfs, init),
        Network::new(&g, Bfs, init),
        init,
        &s,
    );

    let init = |v: NodeId| {
        if v == 0 {
            WalkState::Flip
        } else {
            WalkState::Blank
        }
    };
    lockstep_under_churn(
        "random-walk",
        Network::new_compiled(&g, RandomWalk, init),
        Network::new_compiled(&g, RandomWalk, init),
        Network::new(&g, RandomWalk, init),
        init,
        &s,
    );

    let init = |v: NodeId| TravState::init(v == 0);
    lockstep_under_churn(
        "traversal",
        Network::new_compiled(&g, Traversal, init),
        Network::new_compiled(&g, Traversal, init),
        Network::new(&g, Traversal, init),
        init,
        &s,
    );

    let init = |v: NodeId| {
        if v == 0 {
            TourLabel::Star
        } else {
            TourLabel::Target
        }
    };
    lockstep_under_churn(
        "greedy-tourist",
        Network::new_compiled(&g, TouristBfs, init),
        Network::new_compiled(&g, TouristBfs, init),
        Network::new(&g, TouristBfs, init),
        init,
        &s,
    );

    let init = |_: NodeId| ElectState::init();
    lockstep_under_churn(
        "leader-election",
        Network::new_compiled(&g, Election, init),
        Network::new_compiled(&g, Election, init),
        Network::new(&g, Election, init),
        init,
        &s,
    );

    let init = |v: NodeId| FsspState::init(v == 0);
    lockstep_under_churn(
        "firing-squad",
        Network::new_compiled(&g, FiringSquad, init),
        Network::new_compiled(&g, FiringSquad, init),
        Network::new(&g, FiringSquad, init),
        init,
        &s,
    );

    let init = |v: NodeId| ParityState::init(v == 0);
    lockstep_under_churn(
        "k-parity",
        Network::new_compiled(&g, KParity::<4>, init),
        Network::new_compiled(&g, KParity::<4>, init),
        Network::new(&g, KParity::<4>, init),
        init,
        &s,
    );

    // Arrivals join the clock; the original population starts in unison.
    let n0 = g.n() as NodeId;
    let init = move |v: NodeId| {
        if v < n0 {
            UnisonState::at(0)
        } else {
            UnisonState::joining()
        }
    };
    lockstep_under_churn(
        "k-unison",
        Network::new_compiled(&g, KUnison::<4>, init),
        Network::new_compiled(&g, KUnison::<4>, init),
        Network::new(&g, KUnison::<4>, init),
        init,
        &s,
    );
}
