//! Cross-engine equivalence: the compiled kernel (dense tables, CSR
//! adjacency, dirty-set scheduling, optional parallel rounds) must be
//! bit-identical to the interpreter — same states after every round, the
//! same change counts, and the same per-round metrics on the
//! engine-invariant projection — for every protocol in the workspace, on
//! path / star / Erdős–Rényi / torus topologies, with and without
//! mid-run faults and interpreter interleaving.

use fssga::engine::rng::Xoshiro256;
use fssga::engine::{Budget, Engine, Network, Policy, Protocol, RoundLog, Runner};
use fssga::graph::{generators, Graph, NodeId};
use fssga::protocols::bfs::{Bfs, BfsState};
use fssga::protocols::census::{Census, FmSketch};
use fssga::protocols::election::{ElectState, Election};
use fssga::protocols::firing_squad::{FiringSquad, FsspState};
use fssga::protocols::greedy_tourist::{TourLabel, TouristBfs};
use fssga::protocols::random_walk::{RandomWalk, WalkState};
use fssga::protocols::shortest_paths::ShortestPaths;
use fssga::protocols::synchronizer::alpha_network;
use fssga::protocols::traversal::{TravState, Traversal};
use fssga::protocols::two_coloring::TwoColoring;

/// The four benchmark topologies of the acceptance criteria.
fn graphs() -> Vec<(&'static str, Graph)> {
    let mut rng = Xoshiro256::seed_from_u64(0xEC);
    vec![
        ("path", generators::path(40)),
        ("star", generators::star(40)),
        ("er", generators::connected_gnp(48, 0.12, &mut rng)),
        ("torus", generators::torus(8, 8)),
    ]
}

/// Steps `a` on the interpreter and `b` on the kernel, one synchronous
/// round at a time, asserting states and cumulative change counts agree
/// after every round. Both draw round seeds from identically-seeded RNGs.
///
/// Both runs carry a [`RoundLog`] tracer, and every round's metrics are
/// compared on the engine-invariant projection (round, eligible, changes,
/// faults) — bit-identical by contract — while the scheduling fields are
/// checked against the semantics each engine promises: the interpreter
/// evaluates every eligible node; the kernel may skip some (dirty set)
/// but never evaluates more, and its dispatch counts partition its
/// activations.
fn lockstep<P: Protocol>(
    mut a: Network<P>,
    mut b: Network<P>,
    rounds: usize,
    seed: u64,
    ctx: &str,
) {
    let mut rng_a = Xoshiro256::seed_from_u64(seed);
    let mut rng_b = Xoshiro256::seed_from_u64(seed);
    let mut log_a = RoundLog::default();
    let mut log_b = RoundLog::default();
    for round in 1..=rounds {
        Runner::new(&mut a)
            .engine(Engine::Interpreter)
            .budget(Budget::Rounds(1))
            .rng(&mut rng_a)
            .tracer(&mut log_a)
            .run();
        Runner::new(&mut b)
            .engine(Engine::Kernel)
            .budget(Budget::Rounds(1))
            .rng(&mut rng_b)
            .tracer(&mut log_b)
            .run();
        assert_eq!(
            a.states(),
            b.states(),
            "{ctx}: states diverged at round {round}"
        );
        assert_eq!(
            a.metrics.changes, b.metrics.changes,
            "{ctx}: change counts diverged at round {round}"
        );
    }
    assert_eq!(log_a.rounds.len(), rounds, "{ctx}: interpreter round count");
    assert_eq!(log_b.rounds.len(), rounds, "{ctx}: kernel round count");
    for (ma, mb) in log_a.rounds.iter().zip(&log_b.rounds) {
        let round = ma.round;
        assert_eq!(
            ma.invariant(),
            mb.invariant(),
            "{ctx}: engine-invariant metrics diverged at round {round}\n\
             interpreter: {ma:?}\n\
             kernel:      {mb:?}"
        );
        assert_eq!(
            ma.activations, ma.eligible,
            "{ctx}: interpreter must evaluate every eligible node (round {round})"
        );
        assert!(
            mb.activations <= ma.activations,
            "{ctx}: kernel evaluated more nodes than the interpreter (round {round})"
        );
        assert!(
            mb.scheduled <= mb.eligible,
            "{ctx}: kernel scheduled beyond the eligible set (round {round})"
        );
        for (name, m) in [("interpreter", ma), ("kernel", mb)] {
            assert_eq!(
                m.tabular + m.direct,
                m.activations,
                "{ctx}: {name} dispatch counts must partition activations (round {round})"
            );
        }
        assert!(
            mb.neighbor_reads <= ma.neighbor_reads,
            "{ctx}: kernel read more neighbour states than the interpreter (round {round})"
        );
    }
}

/// Runs each protocol on each topology and checks per-round equivalence.
#[test]
fn all_protocols_agree_on_all_topologies() {
    for (gname, g) in graphs() {
        let n = g.n();
        let last = (n - 1) as NodeId;
        let mut rng = Xoshiro256::seed_from_u64(7);
        let sketches: Vec<FmSketch<8>> = (0..n).map(|_| FmSketch::random_init(&mut rng)).collect();

        let mk = |init: &dyn Fn(NodeId) -> _| Network::new(&g, TwoColoring, init);
        lockstep(
            mk(&|v| TwoColoring::init(v == 0)),
            mk(&|v| TwoColoring::init(v == 0)),
            12,
            1,
            &format!("two-coloring/{gname}"),
        );

        let mk = |_: ()| Network::new(&g, Census::<8>, |v| sketches[v as usize]);
        lockstep(mk(()), mk(()), 12, 2, &format!("census/{gname}"));

        let mk = |_: ()| {
            Network::new(&g, ShortestPaths::<32>, |v| {
                ShortestPaths::<32>::init(v == 0)
            })
        };
        lockstep(mk(()), mk(()), 12, 3, &format!("shortest-paths/{gname}"));

        let mk = |_: ()| Network::new(&g, Bfs, |v| BfsState::init(v == 0, v == last));
        lockstep(mk(()), mk(()), 12, 4, &format!("bfs/{gname}"));

        let mk = |_: ()| {
            Network::new(&g, TouristBfs, |v| {
                if v % 7 == 0 {
                    TourLabel::Target
                } else {
                    TourLabel::Star
                }
            })
        };
        lockstep(mk(()), mk(()), 12, 5, &format!("greedy-tourist/{gname}"));

        let mk = |_: ()| {
            Network::new(&g, RandomWalk, |v| {
                if v == 0 {
                    WalkState::Flip
                } else {
                    WalkState::Blank
                }
            })
        };
        lockstep(mk(()), mk(()), 12, 6, &format!("random-walk/{gname}"));

        let mk = |_: ()| Network::new(&g, Election, |_| ElectState::init());
        lockstep(mk(()), mk(()), 12, 7, &format!("election/{gname}"));

        let mk = |_: ()| Network::new(&g, FiringSquad, |v| FsspState::init(v == 0));
        lockstep(mk(()), mk(()), 12, 8, &format!("firing-squad/{gname}"));

        let mk = |_: ()| Network::new(&g, Traversal, |v| TravState::init(v == 0));
        lockstep(mk(()), mk(()), 12, 9, &format!("traversal/{gname}"));

        let mk = |_: ()| {
            alpha_network(&g, ShortestPaths::<16>, |v| {
                ShortestPaths::<16>::init(v == 0)
            })
        };
        lockstep(
            mk(()),
            mk(()),
            12,
            10,
            &format!("alpha-synchronizer/{gname}"),
        );
    }
}

/// Benign faults mid-run: the kernel's CSR mirror and dirty-set
/// bookkeeping must track edge and node removals exactly.
#[test]
fn engines_agree_across_faults() {
    for (gname, g) in graphs() {
        let mut nets = [
            Network::new(&g, ShortestPaths::<32>, |v| {
                ShortestPaths::<32>::init(v == 0)
            }),
            Network::new(&g, ShortestPaths::<32>, |v| {
                ShortestPaths::<32>::init(v == 0)
            }),
        ];
        let engines = [Engine::Interpreter, Engine::Kernel];
        for (net, engine) in nets.iter_mut().zip(engines) {
            let step = |net: &mut _, k| {
                Runner::new(net)
                    .engine(engine)
                    .budget(Budget::Rounds(k))
                    .run();
            };
            step(net, 3);
            net.remove_edge(0, 1);
            step(net, 2);
            net.remove_node(5);
            step(net, 2);
            // Interpreter-path interleaving invalidates kernel caches.
            let mut rng = Xoshiro256::seed_from_u64(40);
            net.activate(2, &mut rng);
            Runner::new(net)
                .engine(engine)
                .budget(Budget::Fixpoint(1000))
                .run();
        }
        let [a, b] = nets;
        assert_eq!(a.states(), b.states(), "fault run diverged on {gname}");
        assert_eq!(a.metrics.changes, b.metrics.changes, "{gname}");
    }
}

/// Asynchronous sweeps always run on the interpreter; a kernel-backed
/// network must behave identically to a plain one when the two modes are
/// mixed (async sweep, then a compiled synchronous fixpoint).
#[test]
fn async_then_kernel_sync_matches_pure_interpreter() {
    for (gname, g) in graphs() {
        let build = || Network::new(&g, TwoColoring, |v| TwoColoring::init(v == 0));
        let max_rounds = 10 * g.n();
        let run = |mut net: Network<TwoColoring>, engine: Engine| {
            let mut rng = Xoshiro256::seed_from_u64(99);
            Runner::new(&mut net)
                .policy(Policy::Async(fssga::engine::AsyncPolicy::RandomPermutation))
                .budget(Budget::Rounds(2))
                .rng(&mut rng)
                .run();
            Runner::new(&mut net)
                .engine(engine)
                .budget(Budget::Fixpoint(max_rounds))
                .rng(&mut rng)
                .run();
            net
        };
        let a = run(build(), Engine::Interpreter);
        let b = run(build(), Engine::Kernel);
        assert_eq!(a.states(), b.states(), "mixed-mode run diverged on {gname}");
    }
}

/// Parallel synchronous rounds are bit-identical to sequential ones for
/// any thread count, on both engines.
#[cfg(feature = "parallel")]
#[test]
fn parallel_rounds_are_bit_identical() {
    for (gname, g) in graphs() {
        for engine in [Engine::Interpreter, Engine::Kernel] {
            let build = || Network::new(&g, Traversal, |v| TravState::init(v == 0));
            let mut seq = build();
            Runner::new(&mut seq)
                .engine(engine)
                .budget(Budget::Rounds(10))
                .seed(5)
                .run();
            for threads in [2usize, 3, 8] {
                let mut par = build();
                Runner::new(&mut par)
                    .engine(engine)
                    .budget(Budget::Rounds(10))
                    .seed(5)
                    .threads(threads)
                    .run();
                assert_eq!(
                    seq.states(),
                    par.states(),
                    "{gname}: {engine:?} with {threads} threads diverged"
                );
                assert_eq!(seq.metrics.changes, par.metrics.changes, "{gname}");
            }
        }
    }
}
