//! Tier-1 gate: every shipped protocol passes its semantic contract.
//!
//! This runs the `fssga-verify` model checker at [`VerifyScale::quick`]
//! (instances up to four nodes, a few thousand configurations per
//! instance, exhaustive single-fault sweeps included) so the whole suite
//! stays fast; the CI `fssga-lint verify` gate runs the same checks at
//! full contract coverage.

use fssga::verify::{verify_shipped_scaled, Severity, VerifyScale};

#[test]
fn all_shipped_protocols_pass_quick_verification() {
    let results = verify_shipped_scaled(&VerifyScale::quick());
    assert_eq!(results.len(), 12, "one result per shipped protocol");

    let mut failures = Vec::new();
    for r in &results {
        assert!(
            !r.report.diagnostics.is_empty(),
            "{}: the checker must report at least its summary note",
            r.name
        );
        if !r.report.is_clean() {
            failures.push(format!("--- {} ---\n{}", r.name, r.report));
        }
    }
    assert!(
        failures.is_empty(),
        "semantic verification failed:\n{}",
        failures.join("\n")
    );
}

#[test]
fn quick_verification_exercises_every_check_kind() {
    let results = verify_shipped_scaled(&VerifyScale::quick());
    let all: Vec<_> = results
        .iter()
        .flat_map(|r| r.report.diagnostics.iter())
        .collect();
    // Census claims a semilattice: either certified silently (no errors)
    // or skipped with a note — but the confluence pass must have run on
    // the order-independent protocols and the sensitivity pass on all.
    for analysis in ["verify", "verify-sensitivity"] {
        assert!(
            all.iter().any(|d| d.analysis == analysis),
            "no diagnostics from {analysis}"
        );
    }
    // Quick scale truncates nothing so badly that claims are lost: no
    // protocol may end with zero explored instances.
    for r in &results {
        let summary = r
            .report
            .diagnostics
            .iter()
            .find(|d| d.analysis == "verify")
            .unwrap_or_else(|| panic!("{}: missing summary note", r.name));
        assert!(
            !summary.message.starts_with("explored 0"),
            "{}: {}",
            r.name,
            summary.message
        );
        assert_eq!(summary.severity, Severity::Note);
    }
}
