//! Sharded execution equivalence: `Engine::Sharded` with any thread
//! count must be bit-identical to the sequential kernel — same final
//! states, same cumulative change counts — for every protocol in the
//! workspace, on graphs large enough that rounds genuinely split into
//! shards (the kernel falls back to the inline path below
//! `SHARD_MIN_WORK = 256` scheduled nodes). Also covered: fault plans
//! replayed from a text-round-tripped [`CampaignTrace`], and the
//! decomposition contract that per-shard metrics sum to the round's
//! [`RoundMetrics`].
#![cfg(feature = "parallel")]

use fssga::engine::rng::Xoshiro256;
use fssga::engine::{
    Budget, Campaign, CampaignTrace, Engine, FaultEvent, FaultKind, FaultPlan, Network, Protocol,
    RoundLog, Runner,
};
use fssga::graph::{generators, Graph, NodeId};
use fssga::protocols::bfs::{Bfs, BfsState};
use fssga::protocols::census::{Census, FmSketch};
use fssga::protocols::election::{ElectState, Election};
use fssga::protocols::firing_squad::{FiringSquad, FsspState};
use fssga::protocols::greedy_tourist::{TourLabel, TouristBfs};
use fssga::protocols::random_walk::{RandomWalk, WalkState};
use fssga::protocols::shortest_paths::ShortestPaths;
use fssga::protocols::synchronizer::alpha_network;
use fssga::protocols::traversal::{TravState, Traversal};
use fssga::protocols::two_coloring::TwoColoring;

/// Thread counts of the acceptance criteria.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Topologies big enough that early rounds exceed `SHARD_MIN_WORK`,
/// including the degree-skewed power-law graph the degree-aware
/// partitioner exists for.
fn graphs() -> Vec<(&'static str, Graph)> {
    let mut rng = Xoshiro256::seed_from_u64(0x5A);
    vec![
        ("torus", generators::torus(20, 20)),
        ("er", generators::connected_gnp(350, 0.02, &mut rng)),
        (
            "powerlaw",
            generators::preferential_attachment(400, 3, &mut rng),
        ),
    ]
}

/// Runs `rounds` sharded synchronous rounds at `threads` threads and
/// returns the final states plus the cumulative change count.
fn run_sharded<P>(
    build: &dyn Fn() -> Network<P>,
    rounds: usize,
    seed: u64,
    threads: usize,
) -> (Vec<P::State>, u64)
where
    P: Protocol + Sync,
    P::State: Send + Sync + std::fmt::Debug,
{
    let mut net = build();
    Runner::new(&mut net)
        .engine(Engine::Sharded)
        .threads(threads)
        .budget(Budget::Rounds(rounds))
        .seed(seed)
        .run();
    (net.states().to_vec(), net.metrics.changes)
}

/// Asserts the run is thread-count-invariant: every entry of [`THREADS`]
/// reproduces the 1-thread states and change count bit-for-bit, and the
/// 1-thread sharded run matches the plain sequential kernel.
fn assert_thread_invariant<P>(build: &dyn Fn() -> Network<P>, rounds: usize, seed: u64, ctx: &str)
where
    P: Protocol + Sync,
    P::State: Send + Sync + std::fmt::Debug,
{
    let (base_states, base_changes) = run_sharded(build, rounds, seed, THREADS[0]);
    for &threads in &THREADS[1..] {
        let (states, changes) = run_sharded(build, rounds, seed, threads);
        assert_eq!(
            base_states, states,
            "{ctx}: {threads} threads diverged from 1 thread"
        );
        assert_eq!(
            base_changes, changes,
            "{ctx}: change counts diverged at {threads} threads"
        );
    }
    let mut seq = build();
    Runner::new(&mut seq)
        .engine(Engine::Kernel)
        .budget(Budget::Rounds(rounds))
        .seed(seed)
        .run();
    assert_eq!(
        base_states.as_slice(),
        seq.states(),
        "{ctx}: sharded run diverged from the sequential kernel"
    );
    assert_eq!(base_changes, seq.metrics.changes, "{ctx}: seq changes");
}

/// Every protocol in the workspace, on every topology, is bit-identical
/// across 1/2/4/8 threads and against the sequential kernel.
#[test]
fn all_protocols_are_thread_count_invariant() {
    for (gname, g) in graphs() {
        let n = g.n();
        let last = (n - 1) as NodeId;
        let mut rng = Xoshiro256::seed_from_u64(7);
        let sketches: Vec<FmSketch<8>> = (0..n).map(|_| FmSketch::random_init(&mut rng)).collect();

        assert_thread_invariant(
            &|| Network::new(&g, TwoColoring, |v| TwoColoring::init(v == 0)),
            12,
            1,
            &format!("two-coloring/{gname}"),
        );
        assert_thread_invariant(
            &|| Network::new(&g, Census::<8>, |v| sketches[v as usize]),
            12,
            2,
            &format!("census/{gname}"),
        );
        assert_thread_invariant(
            &|| {
                Network::new(&g, ShortestPaths::<32>, |v| {
                    ShortestPaths::<32>::init(v == 0)
                })
            },
            12,
            3,
            &format!("shortest-paths/{gname}"),
        );
        assert_thread_invariant(
            &|| Network::new(&g, Bfs, |v| BfsState::init(v == 0, v == last)),
            12,
            4,
            &format!("bfs/{gname}"),
        );
        assert_thread_invariant(
            &|| {
                Network::new(&g, TouristBfs, |v| {
                    if v % 7 == 0 {
                        TourLabel::Target
                    } else {
                        TourLabel::Star
                    }
                })
            },
            12,
            5,
            &format!("greedy-tourist/{gname}"),
        );
        assert_thread_invariant(
            &|| {
                Network::new(&g, RandomWalk, |v| {
                    if v == 0 {
                        WalkState::Flip
                    } else {
                        WalkState::Blank
                    }
                })
            },
            12,
            6,
            &format!("random-walk/{gname}"),
        );
        assert_thread_invariant(
            &|| Network::new(&g, Election, |_| ElectState::init()),
            12,
            7,
            &format!("election/{gname}"),
        );
        assert_thread_invariant(
            &|| Network::new(&g, FiringSquad, |v| FsspState::init(v == 0)),
            12,
            8,
            &format!("firing-squad/{gname}"),
        );
        assert_thread_invariant(
            &|| Network::new(&g, Traversal, |v| TravState::init(v == 0)),
            12,
            9,
            &format!("traversal/{gname}"),
        );
        assert_thread_invariant(
            &|| {
                alpha_network(&g, ShortestPaths::<16>, |v| {
                    ShortestPaths::<16>::init(v == 0)
                })
            },
            12,
            10,
            &format!("alpha-synchronizer/{gname}"),
        );
    }
}

/// Fault plans survive sharding: a schedule recorded by a [`Campaign`],
/// round-tripped through the [`CampaignTrace`] text format, is replayed
/// tick-by-tick on sharded networks — faults fire, then one sharded
/// round runs — and every thread count lands in the same states.
#[test]
fn campaign_fault_plans_replay_identically_under_sharding() {
    let g = generators::torus(18, 18);
    let mut rng = Xoshiro256::seed_from_u64(0xFA);
    let sketches: Vec<FmSketch<8>> = (0..g.n())
        .map(|_| FmSketch::random_init(&mut rng))
        .collect();
    let plan = FaultPlan::new(vec![
        FaultEvent {
            time: 2,
            kind: FaultKind::Edge(17, 18),
        },
        FaultEvent {
            time: 5,
            kind: FaultKind::Node(41),
        },
        FaultEvent {
            time: 8,
            kind: FaultKind::Edge(100, 101),
        },
    ]);
    // The campaign records which faults actually applied; the () oracle
    // keeps the run trivially conclusive — only the schedule matters here.
    let campaign = Campaign::new(
        &g,
        || Census::<8>,
        |v| sketches[v as usize],
        |_: &Network<Census<8>>| Some(()),
        |_: &Graph| (),
    )
    .horizon(12)
    .seed(3)
    .plan(plan);
    let recorded = campaign.run().trace;
    let trace = CampaignTrace::from_text(&recorded.to_text()).expect("trace round-trips");
    assert_eq!(trace, recorded);
    assert!(!trace.schedule.is_empty(), "plan must actually apply");

    let run = |threads: usize| {
        let mut net = Network::new(&g, Census::<8>, |v| sketches[v as usize]);
        let mut cursor = 0;
        for tick in 0..trace.horizon {
            while cursor < trace.schedule.len() && trace.schedule[cursor].time <= tick {
                match trace.schedule[cursor].kind {
                    FaultKind::Edge(u, v) => net.remove_edge(u, v),
                    FaultKind::Node(v) => net.remove_node(v),
                    FaultKind::AddNode(_) | FaultKind::AddEdge(_, _) => {
                        unreachable!("removal-only plan")
                    }
                };
                cursor += 1;
            }
            Runner::new(&mut net)
                .engine(Engine::Sharded)
                .threads(threads)
                .budget(Budget::Rounds(1))
                .seed(1000 + tick)
                .run();
        }
        (net.states().to_vec(), net.metrics.changes)
    };
    let (base_states, base_changes) = run(THREADS[0]);
    for &threads in &THREADS[1..] {
        let (states, changes) = run(threads);
        assert_eq!(base_states, states, "{threads} threads diverged");
        assert_eq!(base_changes, changes, "{threads} threads change count");
    }
}

/// The decomposition contract of [`fssga::engine::ShardRoundMetrics`]:
/// within any sharded round, shard events arrive in ascending shard
/// order, cover `0..shards` exactly once, and their scheduled /
/// activations / changes / neighbour-read counters sum to the round's
/// own [`fssga::engine::RoundMetrics`].
#[test]
fn shard_metrics_sum_to_round_metrics() {
    let g = generators::torus(20, 20);
    let mut rng = Xoshiro256::seed_from_u64(0xC3);
    let sketches: Vec<FmSketch<8>> = (0..g.n())
        .map(|_| FmSketch::random_init(&mut rng))
        .collect();
    let mut net = Network::new(&g, Census::<8>, |v| sketches[v as usize]);
    let mut log = RoundLog::default();
    Runner::new(&mut net)
        .engine(Engine::Sharded)
        .threads(4)
        .budget(Budget::Fixpoint(4000))
        .seed(11)
        .tracer(&mut log)
        .run();
    let mut sharded_rounds = 0;
    for round in &log.rounds {
        let shards: Vec<_> = log
            .shards
            .iter()
            .filter(|s| s.round == round.round)
            .collect();
        if shards.is_empty() {
            continue; // inline fallback round (below SHARD_MIN_WORK)
        }
        sharded_rounds += 1;
        for (k, s) in shards.iter().enumerate() {
            assert_eq!(s.shard as usize, k, "shard events must arrive in order");
            assert_eq!(s.shards as usize, shards.len(), "shard count stamp");
        }
        let sum = |f: &dyn Fn(&fssga::engine::ShardRoundMetrics) -> u64| {
            shards.iter().map(|s| f(s)).sum::<u64>()
        };
        assert_eq!(sum(&|s| s.scheduled), round.scheduled, "scheduled sum");
        assert_eq!(
            sum(&|s| s.activations),
            round.activations,
            "activations sum"
        );
        assert_eq!(sum(&|s| s.changes), round.changes, "changes sum");
        assert_eq!(
            sum(&|s| s.neighbor_reads),
            round.neighbor_reads,
            "neighbor_reads sum"
        );
    }
    assert!(
        sharded_rounds >= 2,
        "workload must actually shard (got {sharded_rounds} sharded rounds)"
    );
}
