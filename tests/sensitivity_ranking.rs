//! Tier-1 certification of the paper's Section 2 sensitivity ranking.
//!
//! For each algorithm the empirical estimator sweeps lone node kills
//! (one per deterministic campaign) across several instants and counts
//! how many distinct kills break the run at any single instant — an
//! empirical lower bound on `max_t |χ(σ_t)|`. The verdicts are then
//! cross-checked against each algorithm's *declared* [`Sensitive`]
//! critical set: every observed breakage must name a declared critical
//! node, and the declared class must bound the observed count. Together
//! these reproduce the paper's ranking:
//!
//! * census, shortest paths, α synchronizer — 0-sensitive;
//! * greedy tourist, bridge walk — 1-sensitive;
//! * β synchronizer — Θ(n)-sensitive (every interior tree node).

use fssga::engine::faults::{FaultEvent, FaultKind};
use fssga::engine::sensitivity::{
    reasonably_correct, sweep_single_faults, Sensitive, SensitivityClass, Verdict,
};
use fssga::engine::{AsyncPolicy, Budget, Campaign, Network, Policy, RunPolicy, Runner};
use fssga::graph::rng::Xoshiro256;
use fssga::graph::{exact, generators, DynGraph, Graph, NodeId};
use fssga::protocols::bridges::BridgeWalk;
use fssga::protocols::census::{Census, FmSketch};
use fssga::protocols::greedy_tourist::GreedyTourist;
use fssga::protocols::shortest_paths::{labels_as_distances, ShortestPaths};
use fssga::protocols::synchronizer::{alpha_network, BetaSynchronizer};
use fssga::protocols::two_coloring::TwoColoring;

fn all_node_kills(n: usize) -> Vec<FaultKind> {
    (0..n as NodeId).map(FaultKind::Node).collect()
}

#[test]
fn census_is_zero_critical() {
    // Petersen is 3-connected: no single kill disconnects it, so every
    // bit that survives keeps diffusing and every lone fault must leave
    // the census reasonably correct — the declared empty critical set.
    let g = generators::petersen();
    let mut rng = Xoshiro256::seed_from_u64(501);
    let sketches: Vec<FmSketch<8>> = (0..g.n())
        .map(|_| FmSketch::random_init(&mut rng))
        .collect();
    let campaign = Campaign::new(
        &g,
        || Census::<8>,
        |v| sketches[v as usize],
        |net: &Network<Census<8>>| net.graph().is_alive(0).then(|| net.state(0).0),
        |g: &Graph| {
            let d = DynGraph::from_graph(g);
            d.component_of(0)
                .into_iter()
                .fold(0u16, |acc, v| acc | sketches[v as usize].0)
        },
    )
    .horizon(25);

    let mut kinds = all_node_kills(g.n());
    kinds.extend(g.edges().map(|(u, v)| FaultKind::Edge(u, v)));
    let report = sweep_single_faults(&kinds, &[0, 1, 2, 4, 7], |schedule| {
        campaign.run_with_schedule(schedule).verdict
    });

    assert_eq!(
        report.harmful().count(),
        0,
        "census must survive every lone fault: {:?}",
        report.harmful().collect::<Vec<_>>()
    );
    assert_eq!(report.empirical_sensitivity(), 0);
    let declared = Network::new(&g, Census::<8>, |v| sketches[v as usize]);
    assert_eq!(declared.sensitivity_class(), SensitivityClass::Zero);
    assert!(declared.critical_set().is_empty());
    assert!(report.uncovered_by(|_| declared.critical_set()).is_empty());
}

#[test]
fn shortest_paths_are_zero_critical() {
    // Same 3-connected topology, sink at 0. The relaxation re-converges
    // after any lone fault, so the labels of the surviving nodes always
    // match the fault-free distances on the post-fault snapshot.
    let g = generators::petersen();
    let campaign = Campaign::new(
        &g,
        || ShortestPaths::<32>,
        |v| ShortestPaths::<32>::init(v == 0),
        |net: &Network<ShortestPaths<32>>| {
            net.graph().is_alive(0).then(|| {
                let dist = labels_as_distances(net.states());
                net.graph()
                    .alive_nodes()
                    .map(|v| (v, dist[v as usize]))
                    .collect::<Vec<_>>()
            })
        },
        |g: &Graph| {
            // Dead nodes appear as isolated slots in snapshots; on this
            // topology degree > 0 is exactly "alive".
            let dist = exact::bfs_distances(g, &[0]);
            g.nodes()
                .filter(|&v| g.degree(v) > 0)
                .map(|v| (v, dist[v as usize]))
                .collect::<Vec<_>>()
        },
    )
    .horizon(30);

    let report = sweep_single_faults(&all_node_kills(g.n()), &[0, 2, 5], |schedule| {
        campaign.run_with_schedule(schedule).verdict
    });
    assert_eq!(report.harmful().count(), 0);
    let declared = Network::new(&g, ShortestPaths::<32>, |v| {
        ShortestPaths::<32>::init(v == 0)
    });
    assert_eq!(declared.sensitivity_class(), SensitivityClass::Zero);
    assert!(report.uncovered_by(|_| declared.critical_set()).is_empty());
}

/// Replays the fault-free tourist prefix to round budget `t` and returns
/// its declared critical set there (the agent's position).
fn tourist_critical_at(g: &Graph, t: u64) -> Vec<NodeId> {
    let mut tour = GreedyTourist::new(g, 0);
    let mut rng = Xoshiro256::seed_from_u64(502);
    let _ = tour.run(t, &mut rng);
    tour.critical_set()
}

#[test]
fn greedy_tourist_is_at_most_one_critical() {
    // A 2-connected graph: killing any single non-agent node leaves the
    // rest connected, so the tour must still finish; only the agent's own
    // node is load-bearing.
    let mut grng = Xoshiro256::seed_from_u64(77);
    let g = generators::cycle_with_chords(10, 2, &mut grng);
    let times = [0u64, 5, 12];

    let report = sweep_single_faults(&all_node_kills(g.n()), &times, |schedule| {
        let ev = schedule[0];
        let mut tour = GreedyTourist::new(&g, 0);
        let mut rng = Xoshiro256::seed_from_u64(502);
        let _ = tour.run(ev.time, &mut rng);
        match ev.kind {
            FaultKind::Edge(u, v) => {
                tour.network_mut().remove_edge(u, v);
            }
            FaultKind::Node(v) => {
                tour.network_mut().remove_node(v);
            }
            FaultKind::AddNode(_) | FaultKind::AddEdge(_, _) => {
                unreachable!("exhaustive_kinds generates removals only")
            }
        }
        let _ = tour.run(200_000, &mut rng);
        let unvisited_alive = tour
            .network()
            .graph()
            .alive_nodes()
            .any(|v| !tour.visited()[v as usize]);
        if unvisited_alive {
            Verdict::Incorrect
        } else {
            Verdict::ReasonablyCorrect
        }
    });

    assert!(
        report.harmful().count() > 0,
        "killing the agent must break the tour"
    );
    assert!(
        report.empirical_sensitivity() <= 1,
        "at most one critical node per instant: {:?}",
        report.harmful().collect::<Vec<_>>()
    );
    let declared = GreedyTourist::new(&g, 0);
    assert_eq!(declared.sensitivity_class(), SensitivityClass::Constant(1));
    assert!(
        report
            .uncovered_by(|t| tourist_critical_at(&g, t))
            .is_empty(),
        "every harmful kill must name the declared agent position"
    );
}

#[test]
fn bridge_walk_is_at_most_one_critical() {
    // K6 stays bridgeless and connected under any single kill; the only
    // way to break the walk is to kill the node carrying the agent.
    let g = generators::complete(6);
    let times = [0u64, 30];
    let verdict_of = |schedule: &[FaultEvent]| {
        let ev = schedule[0];
        let mut walk = BridgeWalk::new(&g, 0);
        let mut rng = Xoshiro256::seed_from_u64(503);
        walk.run(ev.time, &mut rng);
        match ev.kind {
            FaultKind::Edge(u, v) => {
                walk.graph_mut().remove_edge(u, v);
            }
            FaultKind::Node(v) => {
                walk.graph_mut().remove_node(v);
            }
            FaultKind::AddNode(_) | FaultKind::AddEdge(_, _) => {
                unreachable!("exhaustive_kinds generates removals only")
            }
        }
        walk.run(30_000, &mut rng);
        let snapshot = walk.graph_mut().snapshot();
        let mut claimed: Vec<_> = walk
            .candidate_bridges()
            .into_iter()
            .filter(|&(u, v)| snapshot.has_edge(u, v))
            .collect();
        claimed.sort_unstable();
        let mut truth = exact::bridges(&snapshot);
        truth.sort_unstable();
        if claimed == truth {
            Verdict::ReasonablyCorrect
        } else {
            Verdict::Incorrect
        }
    };
    let report = sweep_single_faults(&all_node_kills(g.n()), &times, verdict_of);

    assert!(
        report.harmful().count() > 0,
        "killing the agent must break the walk"
    );
    assert!(report.empirical_sensitivity() <= 1);
    let declared = BridgeWalk::new(&g, 0);
    assert_eq!(declared.sensitivity_class(), SensitivityClass::Constant(1));
    let critical_at = |t: u64| {
        let mut walk = BridgeWalk::new(&g, 0);
        let mut rng = Xoshiro256::seed_from_u64(503);
        walk.run(t, &mut rng);
        walk.critical_set()
    };
    assert!(report.uncovered_by(critical_at).is_empty());
}

#[test]
fn beta_synchronizer_is_linearly_critical() {
    // On a cycle the graph survives any single node kill, but the β
    // synchronizer's one-shot BFS tree does not: killing any interior
    // tree node (n - 2 of the n nodes here) strands its whole subtree,
    // while a fault-free run on the same reduced graph would have rebuilt
    // the tree and synchronized everyone.
    let n = 12usize;
    let g = generators::cycle(n);
    let fault_free = |g: &Graph| {
        let d = DynGraph::from_graph(g);
        let beta = BetaSynchronizer::new(g, 0);
        let mut sync = beta.synchronized_nodes(&d);
        sync.sort_unstable();
        sync
    };
    let report = sweep_single_faults(&all_node_kills(n), &[0], |schedule| {
        let mut d = DynGraph::from_graph(&g);
        let beta = BetaSynchronizer::new(&g, 0);
        let mut snapshots = vec![d.snapshot()];
        for ev in schedule {
            let applied = match ev.kind {
                FaultKind::Edge(u, v) => d.remove_edge(u, v),
                FaultKind::Node(v) => d.remove_node(v),
                FaultKind::AddNode(_) | FaultKind::AddEdge(_, _) => {
                    unreachable!("exhaustive_kinds generates removals only")
                }
            };
            if applied {
                snapshots.push(d.snapshot());
            }
        }
        let mut sync = beta.synchronized_nodes(&d);
        sync.sort_unstable();
        if reasonably_correct(&snapshots, &sync, fault_free) {
            Verdict::ReasonablyCorrect
        } else {
            Verdict::Incorrect
        }
    });

    let harmful = report.harmful_nodes_at(0);
    assert!(
        harmful.len() >= n - 2,
        "every interior tree node must be critical, got {harmful:?}"
    );
    let declared = BetaSynchronizer::new(&g, 0);
    assert_eq!(declared.sensitivity_class(), SensitivityClass::Linear);
    assert!(
        harmful.len() <= declared.sensitivity_class().bound(n),
        "Linear admits at most n"
    );
    assert!(
        report.uncovered_by(|_| declared.critical_set()).is_empty(),
        "declared interior set must cover every observed breakage"
    );
}

#[test]
fn alpha_synchronizer_is_zero_critical() {
    // The α synchronizer holds no global structure: after any lone kill
    // the survivors' clocks must keep advancing (a dead neighbour is just
    // a smaller neighbourhood, never a permanent wait).
    let n = 8usize;
    let g = generators::cycle(n);
    let report = sweep_single_faults(&all_node_kills(n), &[0, 4], |schedule| {
        let ev = schedule[0];
        let mut net = alpha_network(&g, TwoColoring, |v| TwoColoring::init(v == 0));
        let mut rng = Xoshiro256::seed_from_u64(504);
        Runner::new(&mut net)
            .policy(Policy::Async(AsyncPolicy::RoundRobin))
            .budget(Budget::Steps(ev.time as usize * n))
            .rng(&mut rng)
            .run();
        match ev.kind {
            FaultKind::Edge(u, v) => {
                net.remove_edge(u, v);
            }
            FaultKind::Node(v) => {
                net.remove_node(v);
            }
            FaultKind::AddNode(_) | FaultKind::AddEdge(_, _) => {
                unreachable!("exhaustive_kinds generates removals only")
            }
        }
        // Ten post-fault sweeps; a node advances at most one clock tick
        // per sweep, so sweep-to-sweep clock changes witness progress.
        let alive: Vec<NodeId> = net.graph().alive_nodes().collect();
        let mut progressed = vec![false; n];
        for _ in 0..10 {
            let before: Vec<u8> = (0..n as NodeId).map(|v| net.state(v).clock).collect();
            Runner::new(&mut net)
                .policy(Policy::Async(AsyncPolicy::RoundRobin))
                .budget(Budget::Steps(alive.len()))
                .rng(&mut rng)
                .run();
            for &v in &alive {
                if net.state(v).clock != before[v as usize] {
                    progressed[v as usize] = true;
                }
            }
        }
        let stuck = alive
            .iter()
            .any(|&v| net.graph().degree(v) > 0 && !progressed[v as usize]);
        if stuck {
            Verdict::Incorrect
        } else {
            Verdict::ReasonablyCorrect
        }
    });

    assert_eq!(
        report.harmful().count(),
        0,
        "no lone fault may stall the α synchronizer: {:?}",
        report.harmful().collect::<Vec<_>>()
    );
    let declared = alpha_network(&g, TwoColoring, |v| TwoColoring::init(v == 0));
    assert_eq!(declared.sensitivity_class(), SensitivityClass::Zero);
    assert!(report.uncovered_by(|_| declared.critical_set()).is_empty());
}

#[test]
fn ranking_is_strictly_ordered() {
    // The headline of Section 2, as one assertion chain: census (0) <
    // tourist/bridges (1) < β synchronizer (Θ(n)); on a 12-node instance
    // the β bound must already exceed the constant classes.
    let n = 12;
    assert!(SensitivityClass::Zero.bound(n) < SensitivityClass::Constant(1).bound(n));
    assert!(SensitivityClass::Constant(1).bound(n) < SensitivityClass::Linear.bound(n));
    // And the declared classes of the implementations are the paper's.
    let g = generators::cycle(n);
    let mut rng = Xoshiro256::seed_from_u64(505);
    let census = Network::new(&g, Census::<8>, |_| FmSketch::random_init(&mut rng));
    assert_eq!(census.sensitivity_class().bound(n), 0);
    assert_eq!(GreedyTourist::new(&g, 0).sensitivity_class().bound(n), 1);
    assert_eq!(BridgeWalk::new(&g, 0).sensitivity_class().bound(n), 1);
    assert_eq!(BetaSynchronizer::new(&g, 0).sensitivity_class().bound(n), n);

    // Campaign-based policy cross-check: the same census campaign is
    // fault-tolerant under every scheduling policy, not just sync.
    let sketches: Vec<FmSketch<8>> = (0..n).map(|_| FmSketch::random_init(&mut rng)).collect();
    for policy in [
        RunPolicy::Sync,
        RunPolicy::Async(AsyncPolicy::RoundRobin),
        RunPolicy::Async(AsyncPolicy::RandomPermutation),
    ] {
        let campaign = Campaign::new(
            &g,
            || Census::<8>,
            |v| sketches[v as usize],
            |net: &Network<Census<8>>| net.graph().is_alive(0).then(|| net.state(0).0),
            |g: &Graph| {
                let d = DynGraph::from_graph(g);
                d.component_of(0)
                    .into_iter()
                    .fold(0u16, |acc, v| acc | sketches[v as usize].0)
            },
        )
        .horizon(60)
        .policy(policy);
        let out = campaign.run_with_schedule(&[FaultEvent {
            time: 3,
            kind: FaultKind::Node(6),
        }]);
        assert_eq!(out.verdict, Verdict::ReasonablyCorrect, "{policy:?}");
    }
}
