//! Tier-1 engine determinism suite: parallel synchronous stepping must be
//! bit-identical to sequential stepping.
//!
//! This is the promoted form of the old proptest-only
//! `parallel_equals_sequential` property — it runs in every offline
//! tier-1 build, with no optional features, over a fixed grid of seeds,
//! graph sizes, and thread counts.

use fssga::engine::parallel::sync_step_parallel;
use fssga::engine::{NeighborView, Network, Protocol, StateSpace};
use fssga::graph::generators;
use fssga::graph::rng::Xoshiro256;

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum S4 {
    A,
    B,
    C,
    D,
}
fssga::engine::impl_state_space!(S4 { A, B, C, D });

/// A protocol whose transition hashes the visible mod/thresh statistics —
/// a worst case for determinism testing (every count and coin matters).
#[derive(Copy, Clone)]
struct Mixer;
impl Protocol for Mixer {
    type State = S4;
    const RANDOMNESS: u32 = 4;
    fn transition(&self, own: S4, nbrs: &NeighborView<'_, S4>, coin: u32) -> S4 {
        let mut acc = own.index() as u32 + coin;
        for (i, s) in [S4::A, S4::B, S4::C, S4::D].into_iter().enumerate() {
            acc = acc
                .wrapping_mul(31)
                .wrapping_add(nbrs.count_mod(s, 5) + 7 * nbrs.count_capped(s, 3) + i as u32);
        }
        S4::from_index((acc % 4) as usize)
    }
}

fn assert_lockstep<P, F>(
    protocol: P,
    init: F,
    n: usize,
    p: f64,
    gseed: u64,
    threads: usize,
    rounds: u32,
) where
    P: Protocol + Copy + Sync,
    P::State: PartialEq + std::fmt::Debug + Send + Sync,
    F: Fn(u32) -> P::State + Copy,
{
    let g = generators::connected_gnp(n, p, &mut Xoshiro256::seed_from_u64(gseed));
    let mut seq_net = Network::new(&g, protocol, init);
    let mut par_net = Network::new(&g, protocol, init);
    let mut r1 = Xoshiro256::seed_from_u64(gseed ^ 0xABCD);
    let mut r2 = Xoshiro256::seed_from_u64(gseed ^ 0xABCD);
    for round in 0..rounds {
        seq_net.sync_step(&mut r1);
        sync_step_parallel(&mut par_net, &mut r2, threads);
        assert_eq!(
            seq_net.states(),
            par_net.states(),
            "n={n} gseed={gseed} threads={threads} round={round}"
        );
    }
}

/// Grid of seeds × sizes × thread counts on the count-hashing Mixer.
#[test]
fn parallel_equals_sequential_mixer() {
    let init = |v: u32| S4::from_index((v as usize * 13 + 5) % 4);
    for (gseed, n, threads) in [
        (1u64, 300usize, 2usize),
        (2, 333, 3),
        (3, 366, 4),
        (5, 400, 5),
        (8, 433, 6),
        (13, 466, 7),
        (21, 499, 8),
    ] {
        assert_lockstep(Mixer, init, n, 0.02, gseed, threads, 4);
    }
}

/// Same grid on the randomized-coin path with odd thread counts that do
/// not divide the node count (stresses chunk-boundary handling).
#[test]
fn parallel_equals_sequential_ragged_chunks() {
    let init = |v: u32| S4::from_index(v as usize % 4);
    for threads in [2usize, 3, 5, 7, 11] {
        assert_lockstep(
            Mixer,
            init,
            101,
            0.06,
            0xC0FFEE ^ threads as u64,
            threads,
            5,
        );
    }
}
