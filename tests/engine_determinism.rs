//! Tier-1 engine determinism suite: parallel synchronous stepping must be
//! bit-identical to sequential stepping.
//!
//! This is the promoted form of the old proptest-only
//! `parallel_equals_sequential` property — it runs in every offline
//! tier-1 build, with no optional features, over a fixed grid of seeds,
//! graph sizes, and thread counts.

use fssga::engine::parallel::sync_step_parallel;
use fssga::engine::{Budget, NeighborView, Network, Protocol, Runner, StateSpace, SyncScheduler};
use fssga::graph::rng::Xoshiro256;
use fssga::graph::{generators, NodeId};
use fssga::protocols::bfs::{Bfs, BfsState};
use fssga::protocols::census::{Census, FmSketch};
use fssga::protocols::election::{ElectState, Election};
use fssga::protocols::firing_squad::{FiringSquad, FsspState};
use fssga::protocols::greedy_tourist::{TourLabel, TouristBfs};
use fssga::protocols::random_walk::{RandomWalk, WalkState};
use fssga::protocols::shortest_paths::ShortestPaths;
use fssga::protocols::synchronizer::alpha_network;
use fssga::protocols::traversal::{TravState, Traversal};
use fssga::protocols::two_coloring::TwoColoring;

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum S4 {
    A,
    B,
    C,
    D,
}
fssga::engine::impl_state_space!(S4 { A, B, C, D });

/// A protocol whose transition hashes the visible mod/thresh statistics —
/// a worst case for determinism testing (every count and coin matters).
#[derive(Copy, Clone)]
struct Mixer;
impl Protocol for Mixer {
    type State = S4;
    const RANDOMNESS: u32 = 4;
    fn transition(&self, own: S4, nbrs: &NeighborView<'_, S4>, coin: u32) -> S4 {
        let mut acc = own.index() as u32 + coin;
        for (i, s) in [S4::A, S4::B, S4::C, S4::D].into_iter().enumerate() {
            acc = acc
                .wrapping_mul(31)
                .wrapping_add(nbrs.count_mod(s, 5) + 7 * nbrs.count_capped(s, 3) + i as u32);
        }
        S4::from_index((acc % 4) as usize)
    }
}

fn assert_lockstep<P, F>(
    protocol: P,
    init: F,
    n: usize,
    p: f64,
    gseed: u64,
    threads: usize,
    rounds: u32,
) where
    P: Protocol + Copy + Sync,
    P::State: PartialEq + std::fmt::Debug + Send + Sync,
    F: Fn(u32) -> P::State + Copy,
{
    let g = generators::connected_gnp(n, p, &mut Xoshiro256::seed_from_u64(gseed));
    let mut seq_net = Network::new(&g, protocol, init);
    let mut par_net = Network::new(&g, protocol, init);
    let mut r1 = Xoshiro256::seed_from_u64(gseed ^ 0xABCD);
    let mut r2 = Xoshiro256::seed_from_u64(gseed ^ 0xABCD);
    for round in 0..rounds {
        seq_net.sync_step(&mut r1);
        sync_step_parallel(&mut par_net, &mut r2, threads);
        assert_eq!(
            seq_net.states(),
            par_net.states(),
            "n={n} gseed={gseed} threads={threads} round={round}"
        );
    }
}

/// Grid of seeds × sizes × thread counts on the count-hashing Mixer.
#[test]
fn parallel_equals_sequential_mixer() {
    let init = |v: u32| S4::from_index((v as usize * 13 + 5) % 4);
    for (gseed, n, threads) in [
        (1u64, 300usize, 2usize),
        (2, 333, 3),
        (3, 366, 4),
        (5, 400, 5),
        (8, 433, 6),
        (13, 466, 7),
        (21, 499, 8),
    ] {
        assert_lockstep(Mixer, init, n, 0.02, gseed, threads, 4);
    }
}

/// Runs `rounds` synchronous rounds of identically-built networks through
/// three entry points — the sequential [`Runner`], a 3-thread
/// [`Runner::threads`] run,
/// and the deprecated [`SyncScheduler::run_rounds`] wrapper — and asserts
/// all three report the same change count and end in the same states.
fn changes_parity<P>(build: &dyn Fn() -> Network<P>, rounds: usize, seed: u64, ctx: &str)
where
    P: Protocol + Sync,
    P::State: Send + Sync + std::fmt::Debug,
{
    let mut seq = build();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let sequential = Runner::new(&mut seq)
        .budget(Budget::Rounds(rounds))
        .rng(&mut rng)
        .run()
        .changes;

    let mut par = build();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let parallel = Runner::new(&mut par)
        .budget(Budget::Rounds(rounds))
        .rng(&mut rng)
        .threads(3)
        .run()
        .changes;

    let mut legacy_net = build();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    #[allow(deprecated)]
    let legacy = SyncScheduler::run_rounds(&mut legacy_net, &mut rng, rounds) as u64;

    assert_eq!(
        sequential, parallel,
        "{ctx}: sequential vs parallel changes"
    );
    assert_eq!(
        sequential, legacy,
        "{ctx}: sequential vs deprecated changes"
    );
    assert_eq!(
        seq.states(),
        par.states(),
        "{ctx}: parallel states diverged"
    );
    assert_eq!(
        seq.states(),
        legacy_net.states(),
        "{ctx}: deprecated-wrapper states diverged"
    );
}

/// `RunReport::changes` parity across the sequential runner, the parallel
/// stepper, and the deprecated wrapper, for every protocol in the
/// workspace (the graph is large enough that the multi-thread path
/// really spawns workers instead of falling back to the sequential one).
#[test]
fn change_counts_agree_across_entry_points() {
    let g = generators::connected_gnp(300, 0.02, &mut Xoshiro256::seed_from_u64(0xD15C));
    let n = g.n();
    let last = (n - 1) as NodeId;
    let mut rng = Xoshiro256::seed_from_u64(7);
    let sketches: Vec<FmSketch<8>> = (0..n).map(|_| FmSketch::random_init(&mut rng)).collect();
    let rounds = 8;

    changes_parity(
        &|| Network::new(&g, TwoColoring, |v| TwoColoring::init(v == 0)),
        rounds,
        1,
        "two-coloring",
    );
    changes_parity(
        &|| Network::new(&g, Census::<8>, |v| sketches[v as usize]),
        rounds,
        2,
        "census",
    );
    changes_parity(
        &|| {
            Network::new(&g, ShortestPaths::<32>, |v| {
                ShortestPaths::<32>::init(v == 0)
            })
        },
        rounds,
        3,
        "shortest-paths",
    );
    changes_parity(
        &|| Network::new(&g, Bfs, |v| BfsState::init(v == 0, v == last)),
        rounds,
        4,
        "bfs",
    );
    changes_parity(
        &|| {
            Network::new(&g, TouristBfs, |v| {
                if v % 7 == 0 {
                    TourLabel::Target
                } else {
                    TourLabel::Star
                }
            })
        },
        rounds,
        5,
        "greedy-tourist",
    );
    changes_parity(
        &|| {
            Network::new(&g, RandomWalk, |v| {
                if v == 0 {
                    WalkState::Flip
                } else {
                    WalkState::Blank
                }
            })
        },
        rounds,
        6,
        "random-walk",
    );
    changes_parity(
        &|| Network::new(&g, Election, |_| ElectState::init()),
        rounds,
        7,
        "election",
    );
    changes_parity(
        &|| Network::new(&g, FiringSquad, |v| FsspState::init(v == 0)),
        rounds,
        8,
        "firing-squad",
    );
    changes_parity(
        &|| Network::new(&g, Traversal, |v| TravState::init(v == 0)),
        rounds,
        9,
        "traversal",
    );
    changes_parity(
        &|| {
            alpha_network(&g, ShortestPaths::<16>, |v| {
                ShortestPaths::<16>::init(v == 0)
            })
        },
        rounds,
        10,
        "alpha-synchronizer",
    );
}

/// Same grid on the randomized-coin path with odd thread counts that do
/// not divide the node count (stresses chunk-boundary handling).
#[test]
fn parallel_equals_sequential_ragged_chunks() {
    let init = |v: u32| S4::from_index(v as usize % 4);
    for threads in [2usize, 3, 5, 7, 11] {
        assert_lockstep(
            Mixer,
            init,
            101,
            0.06,
            0xC0FFEE ^ threads as u64,
            threads,
            5,
        );
    }
}
