//! Probes around the §5.2 open problems: how the election behaves under
//! mid-run faults and non-uniform starts. The paper leaves self-
//! stabilizing FSSGA election open; these tests document the observed
//! behaviour of our implementation at the boundary (loose assertions:
//! liveness of the machinery, not claims the paper doesn't make).

use fssga::graph::generators;
use fssga::graph::rng::Xoshiro256;
use fssga::protocols::election::{ElectState, ElectionHarness};

#[test]
fn election_survives_noncandidate_faults() {
    // Kill two nodes mid-election (never a remaining candidate, never
    // disconnecting): the rest still elects a unique leader.
    let mut elected = 0;
    let trials = 6;
    for i in 0..trials {
        let mut rng = Xoshiro256::seed_from_u64(5000 + i);
        let g = generators::connected_gnp(16, 0.3, &mut rng);
        let mut h = ElectionHarness::new(&g);
        // Run a bit, then fault.
        {
            let net = h.network_mut();
            for _ in 0..40 {
                net.sync_step(&mut rng);
            }
        }
        let mut killed = 0;
        for _ in 0..40 {
            if killed >= 2 {
                break;
            }
            let v = rng.gen_index(16) as u32;
            let net = h.network_mut();
            if !net.state(v).remain && net.graph().is_alive(v) {
                let mut probe = net.graph().clone();
                probe.remove_node(v);
                if probe.is_connected() {
                    net.remove_node(v);
                    killed += 1;
                }
            }
        }
        let run = h.run(2_000_000, &mut rng);
        if run.leader.is_some() {
            elected += 1;
        }
    }
    assert!(
        elected >= trials - 1,
        "elections under non-candidate faults: {elected}/{trials}"
    );
}

#[test]
fn killing_every_candidate_stalls_without_crashing() {
    // The boundary case the paper's model admits: if every remaining
    // candidate dies, no leader can ever emerge (remain never returns),
    // but the network must stay live (no panic, phases keep advancing or
    // quiesce).
    let mut rng = Xoshiro256::seed_from_u64(6001);
    let g = generators::complete(8);
    let mut h = ElectionHarness::new(&g);
    for _ in 0..30 {
        h.network_mut().sync_step(&mut rng);
    }
    let candidates: Vec<u32> = (0..8u32)
        .filter(|&v| h.network_mut().state(v).remain)
        .collect();
    assert!(!candidates.is_empty());
    for v in candidates {
        h.network_mut().remove_node(v);
    }
    let run = h.run(20_000, &mut rng);
    assert!(run.leader.is_none(), "no candidate can win from the grave");
}

#[test]
fn arbitrary_start_states_do_not_wedge_the_machinery() {
    // Self-stabilization probe (open problem in the paper): from random
    // garbage states the algorithm is NOT guaranteed to elect — but the
    // automaton must not crash, and phases must keep moving while any
    // conflict exists. We assert liveness only.
    use fssga::engine::StateSpace;
    let mut rng = Xoshiro256::seed_from_u64(6002);
    let g = generators::grid(4, 4);
    for trial in 0..5 {
        let mut h = ElectionHarness::new(&g);
        {
            let net = h.network_mut();
            for v in 0..16u32 {
                let idx = rng.gen_index(ElectState::COUNT);
                net.set_state(v, ElectState::from_index(idx));
            }
        }
        let run = h.run(50_000, &mut rng);
        // Either it recovered and elected, or it is still churning: both
        // are fine; wedging with multiple "leaders" forever is not
        // something we can exclude in general, so just record.
        let stats = h.stats();
        assert!(
            run.leader.is_some() || stats.remaining <= 16,
            "trial {trial}: machinery stayed live"
        );
    }
}
