//! End-to-end tests of the `fssga-serve` simulation service against
//! live TCP loopback connections (ephemeral ports, in-process server).
//!
//! The headline assertion is ISSUE-level: three jobs submitted
//! *concurrently* (census, shortest-paths, and a churn job) must
//! stream metric lines and report final-state fingerprints that are
//! **bit-identical** to direct in-process engine runs of the same
//! specs — the service layer adds scheduling, budgets, and transport,
//! but must be semantically invisible. The budget tests then assert
//! the structured failure modes: `budget-rounds` when a fixpoint
//! request exhausts its round budget, `budget-wall` when the watchdog
//! fires, and `overloaded` when the bounded queue sheds load.

use std::net::TcpStream;
use std::sync::mpsc::sync_channel;
use std::time::Duration;

use fssga::engine::{
    run_churn_oracle_traced, Budget, ChannelTrace, ChurnConfig, ChurnOptions, ChurnStream, Engine,
    Network, Runner, StateSpace,
};
use fssga::graph::{generators, DynGraph};
use fssga::protocols::census::Census;
use fssga::protocols::shortest_paths::ShortestPaths;
use fssga::serve::{
    census_sketch, codes, fingerprint, read_frame, serve, write_frame, Json, Limits, ServeConfig,
    ServerHandle,
};

/// The shared test seed (the service default, spelled explicitly so
/// the direct runs below can't drift from the submitted specs).
const SEED: u64 = 0xF55A_2006;

fn boot(workers: usize, queue_cap: usize, limits: Limits) -> ServerHandle {
    serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_cap,
        limits,
        allow_shutdown: false,
        read_timeout_ms: 100,
    })
    .expect("boot server")
}

/// Everything one served job produced, split by frame type.
struct Served {
    streamed: Vec<String>,
    done: Option<Json>,
    error: Option<Json>,
}

/// Submits `spec` on a fresh connection and reads to the final frame.
fn submit(addr: std::net::SocketAddr, spec: &str) -> Served {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_frame(&mut stream, spec).expect("submit");
    let mut served = Served {
        streamed: Vec::new(),
        done: None,
        error: None,
    };
    loop {
        let text = read_frame(&mut stream)
            .expect("read frame")
            .expect("final frame before close");
        let v = Json::parse(&text).expect("frame is JSON");
        match v.get("t").and_then(Json::as_str) {
            Some("accepted") => {}
            Some("done") => {
                served.done = Some(v);
                break;
            }
            Some("error") => {
                served.error = Some(v);
                break;
            }
            Some(_) => served.streamed.push(text),
            None => panic!("untagged frame: {text}"),
        }
    }
    assert!(
        read_frame(&mut stream).expect("post-final read").is_none(),
        "server closes the connection after the final frame"
    );
    served
}

fn done_fingerprint(served: &Served) -> String {
    served
        .done
        .as_ref()
        .unwrap_or_else(|| {
            panic!(
                "job failed: {:?}",
                served.error.as_ref().map(Json::to_string)
            )
        })
        .get("fingerprint")
        .and_then(Json::as_str)
        .expect("done carries a fingerprint")
        .to_owned()
}

/// Runs `run` with an engine-side [`ChannelTrace`] (the same sink the
/// service streams through) and returns the captured JSONL lines —
/// the reference the served stream must match byte for byte.
fn traced_lines(run: impl FnOnce(&mut ChannelTrace)) -> Vec<String> {
    let (tx, rx) = sync_channel(1 << 15);
    let mut tracer = ChannelTrace::new(tx);
    run(&mut tracer);
    drop(tracer);
    rx.into_iter().collect()
}

#[test]
fn three_concurrent_jobs_are_bit_identical_to_direct_runs() {
    let handle = boot(3, 8, Limits::default());
    let addr = handle.addr();
    let census_spec = r#"{"t":"job","proto":"census","graph":{"gen":"torus","rows":10,"cols":10}}"#;
    let sp_spec =
        r#"{"t":"job","proto":"shortest-paths","graph":{"gen":"torus","rows":10,"cols":10}}"#;
    let churn_spec = r#"{"t":"job","kind":"churn","proto":"census",
        "graph":{"gen":"torus","rows":10,"cols":10},"rounds":40,"churn":{"rate":2.0}}"#;

    let jobs: Vec<_> = [census_spec, sp_spec, churn_spec]
        .into_iter()
        .map(|spec| std::thread::spawn(move || submit(addr, spec)))
        .collect();
    let [census_served, sp_served, churn_served]: [Served; 3] = jobs
        .into_iter()
        .map(|j| j.join().expect("client thread"))
        .collect::<Vec<_>>()
        .try_into()
        .map_err(|_| "three jobs")
        .unwrap();
    handle.shutdown();

    // Direct census run — the recipe documented on `serve::Proto`.
    let g = generators::torus(10, 10);
    let mut net = Network::new(&g, Census::<16>, |v| census_sketch(SEED, v));
    let lines = traced_lines(|t| {
        Runner::new(&mut net)
            .budget(Budget::Fixpoint(Limits::default().max_rounds))
            .seed(SEED)
            .tracer(t)
            .run();
    });
    assert_eq!(
        census_served.streamed, lines,
        "census stream must be bit-identical"
    );
    assert_eq!(
        done_fingerprint(&census_served),
        format!(
            "{:016x}",
            fingerprint(net.states().iter().map(|s| s.index()))
        ),
    );

    // Direct shortest-paths run.
    let mut net = Network::new(&g, ShortestPaths::<256>, |v| {
        ShortestPaths::<256>::init(v == 0)
    });
    let lines = traced_lines(|t| {
        Runner::new(&mut net)
            .budget(Budget::Fixpoint(Limits::default().max_rounds))
            .seed(SEED)
            .tracer(t)
            .run();
    });
    assert_eq!(
        sp_served.streamed, lines,
        "shortest-paths stream must be bit-identical"
    );
    assert_eq!(
        done_fingerprint(&sp_served),
        format!(
            "{:016x}",
            fingerprint(net.states().iter().map(|s| s.index()))
        ),
    );

    // Direct churn run: converge, then stream the same seeded events.
    let stream = ChurnStream::generate(
        &DynGraph::from_graph(&g),
        &ChurnConfig {
            seed: SEED,
            horizon: 40,
            rate: 2.0,
            ..ChurnConfig::default()
        },
    );
    let mut net = Network::new_compiled(&g, Census::<16>, |v| census_sketch(SEED, v));
    Runner::new(&mut net)
        .engine(Engine::Kernel)
        .budget(Budget::Fixpoint(10 * g.n()))
        .run();
    let opts = ChurnOptions {
        window: 0,
        check_every: 0,
        cancel: None,
    };
    let lines = traced_lines(|t| {
        run_churn_oracle_traced(
            &mut net,
            &stream,
            &opts,
            |v| census_sketch(SEED, v),
            |_| -> Option<()> { None },
            |_| (),
            t,
        );
    });
    assert_eq!(
        churn_served.streamed, lines,
        "churn stream must be bit-identical"
    );
    assert_eq!(
        done_fingerprint(&churn_served),
        format!(
            "{:016x}",
            fingerprint(net.states().iter().map(|s| s.index()))
        ),
    );
}

#[test]
fn exhausted_round_budget_is_a_structured_error() {
    let handle = boot(1, 4, Limits::default());
    // KUnison never reaches a fixpoint; a fixpoint request with a
    // finite round budget must fail with `budget-rounds`.
    let served = submit(
        handle.addr(),
        r#"{"t":"job","proto":"kunison","graph":{"gen":"cycle","n":16},
            "rounds":25,"stream":false}"#,
    );
    let err = served.error.expect("budget error frame");
    assert_eq!(
        err.get("code").and_then(Json::as_str),
        Some(codes::BUDGET_ROUNDS)
    );
    assert!(err.get("job").and_then(Json::as_u64).is_some());
    assert!(err
        .get("detail")
        .and_then(Json::as_str)
        .expect("detail text")
        .contains("25"));
    handle.shutdown();
}

#[test]
fn watchdog_cancels_an_over_wall_budget_job() {
    let limits = Limits {
        max_wall_ms: 2_000,
        ..Limits::default()
    };
    let handle = boot(1, 4, limits);
    // A non-fixpoint KUnison run asking for the full round allowance:
    // far more work than 150 ms permits, so the watchdog must fire.
    let served = submit(
        handle.addr(),
        r#"{"t":"job","proto":"kunison","graph":{"gen":"cycle","n":512},
            "rounds":100000,"fixpoint":false,"wall_ms":150,"stream":false}"#,
    );
    let err = served.error.expect("wall-budget error frame");
    assert_eq!(
        err.get("code").and_then(Json::as_str),
        Some(codes::BUDGET_WALL)
    );
    assert!(err
        .get("detail")
        .and_then(Json::as_str)
        .expect("detail text")
        .contains("150"));
    handle.shutdown();
}

#[test]
fn full_queue_sheds_with_overloaded() {
    // One worker, one queue slot: job A runs, job B parks, job C sheds.
    let limits = Limits {
        max_wall_ms: 2_000,
        ..Limits::default()
    };
    let handle = boot(1, 1, limits);
    let addr = handle.addr();
    let slow = r#"{"t":"job","proto":"kunison","graph":{"gen":"cycle","n":512},
        "rounds":100000,"fixpoint":false,"wall_ms":700,"stream":false}"#;
    let a = std::thread::spawn(move || submit(addr, slow));
    std::thread::sleep(Duration::from_millis(200)); // let A reach a worker
    let b = std::thread::spawn(move || submit(addr, slow));
    std::thread::sleep(Duration::from_millis(100)); // let B park in the queue
    let c = submit(addr, slow);
    let err = c.error.expect("shed error frame");
    assert_eq!(
        err.get("code").and_then(Json::as_str),
        Some(codes::OVERLOADED)
    );
    // A and B run to their wall budgets and fail structurally, not
    // silently — the shed is the only `overloaded` outcome.
    for job in [a.join().unwrap(), b.join().unwrap()] {
        let code = job
            .error
            .expect("wall budget fires")
            .get("code")
            .and_then(Json::as_str)
            .map(str::to_owned);
        assert_eq!(code.as_deref(), Some(codes::BUDGET_WALL));
    }
    handle.shutdown();
}
