//! Composing the paper's algorithms: leader election breaks the global
//! symmetry, and the elected node then seeds algorithms that need a
//! distinguished originator — exactly the role of the paper's Section 4.7
//! ("an election algorithm is an algorithmic form of global symmetry
//! breaking").

use fssga::engine::{Budget, Network, Runner};
use fssga::graph::rng::Xoshiro256;
use fssga::graph::{exact, generators};
use fssga::protocols::election::ElectionHarness;
use fssga::protocols::shortest_paths::{labels_as_distances, ShortestPaths};
use fssga::protocols::traversal::TraversalHarness;
use fssga::protocols::two_coloring::{outcome, ColoringOutcome, TwoColoring};

#[test]
fn elect_then_two_color_from_uniform_start() {
    let mut rng = Xoshiro256::seed_from_u64(9001);
    for trial in 0..6 {
        let g = generators::connected_gnp(18, 0.2, &mut rng);
        // Phase 1: every node identical; elect.
        let mut h = ElectionHarness::new(&g);
        let leader = h.run(1_000_000, &mut rng).leader.expect("elects");
        // Phase 2: the leader seeds the 4.1 automaton.
        let mut net = Network::new(&g, TwoColoring, |v| TwoColoring::init(v == leader));
        Runner::new(&mut net)
            .budget(Budget::Fixpoint(20 * g.n()))
            .run()
            .fixpoint
            .unwrap();
        let truth = exact::bipartition(&g).is_some();
        let got = outcome(net.states()) == ColoringOutcome::ProperColoring;
        assert_eq!(got, truth, "trial {trial}");
    }
}

#[test]
fn elect_then_cluster_around_the_leader() {
    // The elected node becomes the data sink of the §2.2 clustering.
    let mut rng = Xoshiro256::seed_from_u64(9002);
    let g = generators::grid(5, 7);
    let mut h = ElectionHarness::new(&g);
    let leader = h.run(2_000_000, &mut rng).leader.expect("elects");
    let mut net = Network::new(&g, ShortestPaths::<128>, |v| {
        ShortestPaths::<128>::init(v == leader)
    });
    Runner::new(&mut net)
        .budget(Budget::Fixpoint(600))
        .run()
        .fixpoint
        .unwrap();
    assert_eq!(
        labels_as_distances(net.states()),
        exact::bfs_distances(&g, &[leader])
    );
}

#[test]
fn elect_then_traverse_from_the_leader() {
    // Leader becomes the Milgram originator: full tour, 2n-2 moves.
    let mut rng = Xoshiro256::seed_from_u64(9003);
    let g = generators::connected_gnp(14, 0.25, &mut rng);
    let mut h = ElectionHarness::new(&g);
    let leader = h.run(1_000_000, &mut rng).leader.expect("elects");
    let mut trav = TraversalHarness::new(&g, leader);
    let run = trav.run(200_000, &mut rng, true);
    assert!(run.complete);
    assert_eq!(run.hand_moves, 2 * (g.n() as u64 - 1));
    assert!(run.visited.iter().all(|&v| v));
}

#[test]
fn bfs_runs_asynchronously_through_the_alpha_synchronizer() {
    // §4.3: "we describe a BFS algorithm for the synchronous FSSGA model,
    // and by using the result of Section 4.2 this can be transformed into
    // an asynchronous algorithm." Do exactly that.
    use fssga::protocols::bfs::{Bfs, BfsState, Status};
    use fssga::protocols::synchronizer::alpha_network;
    let mut rng = Xoshiro256::seed_from_u64(9004);
    for trial in 0..6u64 {
        let g = generators::connected_gnp(20, 0.15, &mut rng);
        let target = 19u32;
        let mut net = alpha_network(&g, Bfs, |v| BfsState::init(v == 0, v == target));
        // Fully asynchronous random-permutation sweeps.
        let mut order: Vec<u32> = (0..g.n() as u32).collect();
        for _ in 0..12 * g.n() {
            rng.shuffle(&mut order);
            for &v in &order {
                net.activate(v, &mut rng);
            }
        }
        assert_eq!(
            net.state(0).cur.status,
            Status::Found,
            "trial {trial}: async BFS must find the target"
        );
        // Labels still encode distance mod 3.
        let truth = exact::bfs_distances(&g, &[0]);
        for v in 0..g.n() as u32 {
            assert_eq!(
                net.state(v).cur.label.residue(),
                Some(truth[v as usize] % 3),
                "trial {trial}, node {v}"
            );
        }
    }
}

#[test]
fn alpha_synchronizer_survives_adversarial_fair_schedules() {
    // The §4.2 guarantee is for ANY fair schedule, not just nice ones.
    // Adversary: each sweep activates nodes in descending-clock order
    // (the most-advanced first — maximally blocking), which is fair
    // (everyone once per sweep) but pessimal for progress.
    use fssga::protocols::shortest_paths::{labels_as_distances, ShortestPaths};
    use fssga::protocols::synchronizer::alpha_network;
    let mut rng = Xoshiro256::seed_from_u64(9005);
    let g = generators::grid(6, 6);
    let mut net = alpha_network(&g, ShortestPaths::<64>, |v| {
        ShortestPaths::<64>::init(v == 0)
    });
    let n = g.n();
    let mut advances = vec![0u64; n];
    let sweeps = 50;
    for _ in 0..sweeps {
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(advances[v as usize]));
        for v in order {
            let before = net.state(v).clock;
            net.activate(v, &mut rng);
            if net.state(v).clock != before {
                advances[v as usize] += 1;
            }
        }
        // Skew invariant must hold under the adversary too.
        for (u, v) in g.edges() {
            let d = advances[u as usize] as i64 - advances[v as usize] as i64;
            assert!(d.abs() <= 1, "skew {d} between {u} and {v}");
        }
    }
    // "in k units of time each node has advanced at least k times".
    assert!(advances.iter().all(|&a| a >= sweeps));
    // And the simulated protocol still computes the right answer.
    let labels: Vec<_> = net.states().iter().map(|s| s.cur).collect();
    assert_eq!(labels_as_distances(&labels), exact::bfs_distances(&g, &[0]));
}
