//! Property tests over the engine and graph substrate.
//!
//! The randomized `proptest` suites are opt-in behind the `proptest`
//! feature (they need the registry dependency, which the offline tier-1
//! build does not have; see the root `Cargo.toml`). Deterministic
//! equivalents driven by the in-house seeded RNG always run, so the
//! properties themselves are covered offline. The flagship
//! parallel-vs-sequential determinism property lives in its own tier-1
//! suite, `tests/engine_determinism.rs`.

use fssga::engine::{NeighborView, Network, Protocol, StateSpace};
use fssga::graph::rng::Xoshiro256;
use fssga::graph::{exact, generators, Graph};

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum S4 {
    A,
    B,
    C,
    D,
}
fssga::engine::impl_state_space!(S4 { A, B, C, D });

/// A protocol whose transition hashes the visible mod/thresh statistics —
/// a worst case for determinism testing (every count matters).
struct Mixer;
impl Protocol for Mixer {
    type State = S4;
    const RANDOMNESS: u32 = 4;
    fn transition(&self, own: S4, nbrs: &NeighborView<'_, S4>, coin: u32) -> S4 {
        let mut acc = own.index() as u32 + coin;
        for (i, s) in [S4::A, S4::B, S4::C, S4::D].into_iter().enumerate() {
            acc = acc
                .wrapping_mul(31)
                .wrapping_add(nbrs.count_mod(s, 5) + 7 * nbrs.count_capped(s, 3) + i as u32);
        }
        S4::from_index((acc % 4) as usize)
    }
}

/// Generator invariants: connected generators produce connected simple
/// graphs with the right counts.
#[test]
fn generator_invariants_deterministic() {
    let mut rng = Xoshiro256::seed_from_u64(0x9E11);
    for trial in 0..40 {
        let n = 2 + (trial * 7) % 58;
        let p = (trial as f64) / 100.0;
        let g = generators::connected_gnp(n, p, &mut rng);
        assert_eq!(g.n(), n);
        assert!(exact::is_connected(&g), "trial {trial}");
        let degsum: usize = g.nodes().map(|v| g.degree(v)).sum();
        assert_eq!(degsum, 2 * g.m());
        let t = generators::random_tree(n, &mut rng);
        assert_eq!(t.m(), n - 1);
        assert!(exact::is_connected(&t));
        assert_eq!(exact::bridges(&t).len(), n - 1);
    }
}

/// Fault surgery keeps DynGraph and CSR snapshots consistent.
#[test]
fn snapshot_consistency_deterministic() {
    let mut rng = Xoshiro256::seed_from_u64(0x5A17);
    for trial in 0..30 {
        let g = generators::connected_gnp(30, 0.15, &mut rng);
        let mut d = fssga::graph::DynGraph::from_graph(&g);
        let kills = 1 + trial % 7;
        for _ in 0..kills {
            let v = rng.gen_index(30) as u32;
            d.remove_node(v);
        }
        let snap: Graph = d.snapshot();
        assert_eq!(snap.m(), d.m());
        for v in 0..30u32 {
            let mut a: Vec<u32> = d.neighbors(v).to_vec();
            a.sort_unstable();
            assert_eq!(a, snap.neighbors(v).to_vec(), "trial {trial}, node {v}");
        }
    }
}

/// Deterministic replay: identical seeds give identical multi-round
/// probabilistic executions.
#[test]
fn replay_determinism_deterministic() {
    let g = generators::grid(8, 8);
    let init = |v: u32| S4::from_index(v as usize % 4);
    let run = |s: u64| {
        let mut net = Network::new(&g, Mixer, init);
        let mut rng = Xoshiro256::seed_from_u64(s);
        for _ in 0..6 {
            net.sync_step(&mut rng);
        }
        net.states().to_vec()
    };
    for seed in [0u64, 1, 42, 0xDEAD, 9_999] {
        assert_eq!(run(seed), run(seed), "seed {seed}");
    }
}

#[test]
fn parallel_stepping_handles_huge_alphabets() {
    // The election automaton has ~69k states; the parallel stepper's
    // per-thread scratch arrays and presence lists must agree with the
    // sequential path bit-for-bit even there.
    use fssga::engine::parallel::sync_step_parallel;
    use fssga::protocols::election::{ElectState, Election};
    let mut rng = Xoshiro256::seed_from_u64(424242);
    let g = generators::connected_gnp(400, 0.015, &mut rng);
    let mut seq_net = Network::new(&g, Election, |_| ElectState::init());
    let mut par_net = Network::new(&g, Election, |_| ElectState::init());
    let mut r1 = Xoshiro256::seed_from_u64(7);
    let mut r2 = Xoshiro256::seed_from_u64(7);
    for round in 0..40 {
        seq_net.sync_step(&mut r1);
        sync_step_parallel(&mut par_net, &mut r2, 6);
        assert_eq!(seq_net.states(), par_net.states(), "round {round}");
    }
}

/// Randomized originals, kept for `--features proptest` runs (requires
/// re-adding the `proptest` dev-dependency; see the root `Cargo.toml`).
#[cfg(feature = "proptest")]
mod proptest_suite {
    use super::*;
    use fssga::engine::parallel::sync_step_parallel;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Parallel and sequential synchronous stepping agree bit-for-bit
        /// on random graphs, seeds, and thread counts.
        #[test]
        fn parallel_equals_sequential(seed in 0u64..1000, n in 300usize..500, threads in 2usize..9) {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            let g = generators::connected_gnp(n, 0.02, &mut rng);
            let init = |v: u32| S4::from_index((v as usize * 13 + 5) % 4);
            let mut a = Network::new(&g, Mixer, init);
            let mut b = Network::new(&g, Mixer, init);
            let mut ra = Xoshiro256::seed_from_u64(seed ^ 0xABCD);
            let mut rb = Xoshiro256::seed_from_u64(seed ^ 0xABCD);
            for _ in 0..4 {
                a.sync_step(&mut ra);
                sync_step_parallel(&mut b, &mut rb, threads);
                prop_assert_eq!(a.states(), b.states());
            }
        }

        #[test]
        fn generator_invariants(seed in 0u64..10_000, n in 2usize..60, p in 0.0f64..0.4) {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            let g = generators::connected_gnp(n, p, &mut rng);
            prop_assert_eq!(g.n(), n);
            prop_assert!(exact::is_connected(&g));
            let degsum: usize = g.nodes().map(|v| g.degree(v)).sum();
            prop_assert_eq!(degsum, 2 * g.m());
            let t = generators::random_tree(n, &mut rng);
            prop_assert_eq!(t.m(), n - 1);
            prop_assert!(exact::is_connected(&t));
            prop_assert_eq!(exact::bridges(&t).len(), n - 1);
        }

        #[test]
        fn snapshot_consistency(seed in 0u64..10_000, kills in 1usize..8) {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            let g = generators::connected_gnp(30, 0.15, &mut rng);
            let mut d = fssga::graph::DynGraph::from_graph(&g);
            for _ in 0..kills {
                let v = rng.gen_index(30) as u32;
                d.remove_node(v);
            }
            let snap: Graph = d.snapshot();
            prop_assert_eq!(snap.m(), d.m());
            for v in 0..30u32 {
                let mut a: Vec<u32> = d.neighbors(v).to_vec();
                a.sort_unstable();
                prop_assert_eq!(a, snap.neighbors(v).to_vec());
            }
        }

        #[test]
        fn replay_determinism(seed in 0u64..10_000) {
            let g = generators::grid(8, 8);
            let init = |v: u32| S4::from_index(v as usize % 4);
            let run = |s: u64| {
                let mut net = Network::new(&g, Mixer, init);
                let mut rng = Xoshiro256::seed_from_u64(s);
                for _ in 0..6 {
                    net.sync_step(&mut rng);
                }
                net.states().to_vec()
            };
            prop_assert_eq!(run(seed), run(seed));
        }
    }
}
