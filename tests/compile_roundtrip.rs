//! Property test for the protocol → mod-thresh compiler: random decision
//! lists, wrapped as engine protocols, compile to tables whose network
//! behaviour is bit-identical to the native execution.
//!
//! The deterministic suite always runs (tier-1, offline); the original
//! `proptest` version is kept behind the `proptest` feature.

use fssga::core::modthresh::{ModThreshProgram, Prop};
use fssga::engine::compile::compile_protocol;
use fssga::engine::interp::InterpNetwork;
use fssga::engine::{impl_state_space, NeighborView, Network, Protocol, StateSpace};
use fssga::graph::generators;
use fssga::graph::rng::Xoshiro256;

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum S3 {
    A,
    B,
    C,
}
impl_state_space!(S3 { A, B, C });

/// A protocol whose transition interprets one mod-thresh program per own
/// state, reading the view through exactly the queries the program's
/// atoms name.
struct MtProtocol {
    programs: [ModThreshProgram; 3],
}

impl Protocol for MtProtocol {
    type State = S3;

    fn transition(&self, own: S3, nbrs: &NeighborView<'_, S3>, _coin: u32) -> S3 {
        let prog = &self.programs[own.index()];
        // Reconstruct counts through view queries within the program's own
        // bounds: capped at T_j and mod M_j, then synthesize (the same
        // trick the alpha synchronizer uses).
        let t = prog.thresholds();
        let m = prog.moduli();
        let mut counts = [0u64; 3];
        for (j, c) in counts.iter_mut().enumerate() {
            let s = S3::from_index(j);
            let capped = u64::from(nbrs.count_capped(s, t[j].max(1) as u32));
            *c = if capped < t[j].max(1) {
                capped
            } else {
                let residue = u64::from(nbrs.count_mod(s, m[j] as u32));
                let tt = t[j].max(1);
                tt + (residue + m[j] - tt % m[j]) % m[j]
            };
        }
        S3::from_index(prog.eval_counts(&counts))
    }
}

/// Deterministic random atom over `s` states (mirrors the proptest
/// strategy below).
fn rand_atom(rng: &mut Xoshiro256, s: usize) -> Prop {
    let q = rng.gen_index(s);
    match rng.gen_range(3) {
        0 => Prop::below(q, 1 + rng.gen_range(3)),
        1 => {
            let m = 2 + rng.gen_range(2);
            Prop::mod_count(q, rng.gen_range(m), m)
        }
        _ => Prop::at_least(q, 1 + rng.gen_range(2)),
    }
}

/// Deterministic random program over 3 states: up to 2 clauses, each a
/// conjunction of 1–2 atoms.
fn rand_program(rng: &mut Xoshiro256) -> ModThreshProgram {
    let clauses: Vec<(Prop, usize)> = (0..rng.gen_index(3))
        .map(|_| {
            let mut guard = rand_atom(rng, 3);
            for _ in 0..rng.gen_index(2) {
                guard = guard.and(rand_atom(rng, 3));
            }
            (guard, rng.gen_index(3))
        })
        .collect();
    let default = rng.gen_index(3);
    ModThreshProgram::new(3, 3, clauses, default).expect("valid")
}

#[test]
fn random_protocols_compile_to_lockstep_tables_deterministic() {
    let mut rng = Xoshiro256::seed_from_u64(0xC011_711E);
    for trial in 0..12u64 {
        let proto = MtProtocol {
            programs: [
                rand_program(&mut rng),
                rand_program(&mut rng),
                rand_program(&mut rng),
            ],
        };
        let auto = compile_protocol(&proto, 1 << 18).expect("small bounds");
        let g = generators::connected_gnp(18, 0.18, &mut Xoshiro256::seed_from_u64(trial * 97 + 5));
        let init = |v: u32| S3::from_index((v as usize * 7 + 1) % 3);
        let mut native = Network::new(&g, proto, init);
        let mut interp = InterpNetwork::new(&g, &auto, |v| init(v).index());
        for round in 0..12 {
            native.sync_step_seeded(round);
            interp.sync_step_seeded(round);
            let ids: Vec<usize> = native.states().iter().map(|s| s.index()).collect();
            assert_eq!(&ids, interp.states(), "trial {trial}, round {round}");
        }
    }
}

/// Randomized original, kept for `--features proptest` runs.
#[cfg(feature = "proptest")]
mod proptest_suite {
    use super::*;
    use proptest::prelude::*;

    fn atom(s: usize) -> impl Strategy<Value = Prop> {
        prop_oneof![
            (0..s, 1u64..4).prop_map(|(q, t)| Prop::below(q, t)),
            (0..s, 0u64..3, 2u64..4).prop_map(|(q, r, m)| Prop::mod_count(q, r % m, m)),
            (0..s, 1u64..3).prop_map(|(q, t)| Prop::at_least(q, t)),
        ]
    }

    fn program() -> impl Strategy<Value = ModThreshProgram> {
        (
            prop::collection::vec((prop::collection::vec(atom(3), 1..3), 0usize..3), 0..3),
            0usize..3,
        )
            .prop_map(|(clauses, default)| {
                let built: Vec<(Prop, usize)> = clauses
                    .into_iter()
                    .map(|(atoms, r)| {
                        let mut it = atoms.into_iter();
                        let first = it.next().unwrap();
                        (it.fold(first, |acc, a| acc.and(a)), r)
                    })
                    .collect();
                ModThreshProgram::new(3, 3, built, default).expect("valid")
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn random_protocols_compile_to_lockstep_tables(
            p0 in program(),
            p1 in program(),
            p2 in program(),
            seed in 0u64..1000,
        ) {
            let proto = MtProtocol { programs: [p0, p1, p2] };
            let auto = compile_protocol(&proto, 1 << 18).expect("small bounds");
            let g = generators::connected_gnp(18, 0.18, &mut Xoshiro256::seed_from_u64(seed));
            let init = |v: u32| S3::from_index((v as usize * 7 + 1) % 3);
            let mut native = Network::new(&g, proto, init);
            let mut interp = InterpNetwork::new(&g, &auto, |v| init(v).index());
            for round in 0..12 {
                native.sync_step_seeded(round);
                interp.sync_step_seeded(round);
                let ids: Vec<usize> = native.states().iter().map(|s| s.index()).collect();
                prop_assert_eq!(&ids, interp.states(), "round {}", round);
            }
        }
    }
}
