//! Property test for the protocol → mod-thresh compiler: random decision
//! lists, wrapped as engine protocols, compile to tables whose network
//! behaviour is bit-identical to the native execution.

use fssga::core::modthresh::{ModThreshProgram, Prop};
use fssga::engine::compile::compile_protocol;
use fssga::engine::interp::InterpNetwork;
use fssga::engine::{impl_state_space, Network, NeighborView, Protocol, StateSpace};
use fssga::graph::rng::Xoshiro256;
use fssga::graph::generators;
use proptest::prelude::*;

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum S3 {
    A,
    B,
    C,
}
impl_state_space!(S3 { A, B, C });

/// A protocol whose transition interprets one mod-thresh program per own
/// state, reading the view through exactly the queries the program's
/// atoms name.
struct MtProtocol {
    programs: [ModThreshProgram; 3],
}

impl Protocol for MtProtocol {
    type State = S3;

    fn transition(&self, own: S3, nbrs: &NeighborView<'_, S3>, _coin: u32) -> S3 {
        let prog = &self.programs[own.index()];
        // Reconstruct counts through view queries within the program's own
        // bounds: capped at T_j and mod M_j, then synthesize (the same
        // trick the alpha synchronizer uses).
        let t = prog.thresholds();
        let m = prog.moduli();
        let mut counts = [0u64; 3];
        for (j, c) in counts.iter_mut().enumerate() {
            let s = S3::from_index(j);
            let capped = u64::from(nbrs.count_capped(s, t[j].max(1) as u32));
            *c = if capped < t[j].max(1) {
                capped
            } else {
                let residue = u64::from(nbrs.count_mod(s, m[j] as u32));
                let tt = t[j].max(1);
                tt + (residue + m[j] - tt % m[j]) % m[j]
            };
        }
        S3::from_index(prog.eval_counts(&counts))
    }
}

fn atom(s: usize) -> impl Strategy<Value = Prop> {
    prop_oneof![
        (0..s, 1u64..4).prop_map(|(q, t)| Prop::below(q, t)),
        (0..s, 0u64..3, 2u64..4).prop_map(|(q, r, m)| Prop::mod_count(q, r % m, m)),
        (0..s, 1u64..3).prop_map(|(q, t)| Prop::at_least(q, t)),
    ]
}

fn program() -> impl Strategy<Value = ModThreshProgram> {
    (
        prop::collection::vec((prop::collection::vec(atom(3), 1..3), 0usize..3), 0..3),
        0usize..3,
    )
        .prop_map(|(clauses, default)| {
            let built: Vec<(Prop, usize)> = clauses
                .into_iter()
                .map(|(atoms, r)| {
                    let mut it = atoms.into_iter();
                    let first = it.next().unwrap();
                    (it.fold(first, |acc, a| acc.and(a)), r)
                })
                .collect();
            ModThreshProgram::new(3, 3, built, default).expect("valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_protocols_compile_to_lockstep_tables(
        p0 in program(),
        p1 in program(),
        p2 in program(),
        seed in 0u64..1000,
    ) {
        let proto = MtProtocol { programs: [p0, p1, p2] };
        let auto = compile_protocol(&proto, 1 << 18).expect("small bounds");
        let g = generators::connected_gnp(18, 0.18, &mut Xoshiro256::seed_from_u64(seed));
        let init = |v: u32| S3::from_index((v as usize * 7 + 1) % 3);
        let mut native = Network::new(&g, proto, init);
        let mut interp = InterpNetwork::new(&g, &auto, |v| init(v).index());
        for round in 0..12 {
            native.sync_step_seeded(round);
            interp.sync_step_seeded(round);
            let ids: Vec<usize> = native.states().iter().map(|s| s.index()).collect();
            prop_assert_eq!(&ids, interp.states(), "round {}", round);
        }
    }
}
