//! Golden observability snapshot: the per-round metrics of a small,
//! fully deterministic compiled-kernel run must match the recorded JSONL
//! file byte for byte.
//!
//! The snapshot is `tests/golden/census_path16_metrics.jsonl`, produced
//! by `fssga-bench golden` (CI regenerates and diffs it the same way).
//! If a metric's definition changes, regenerate deliberately with
//! `cargo run -p fssga-bench --bin fssga-bench -- golden` and review the
//! diff — this test exists so metric semantics cannot drift silently.

use fssga::engine::rng::Xoshiro256;
use fssga::engine::{Budget, Engine, Network, RoundLog, Runner};
use fssga::graph::generators;
use fssga::protocols::census::{Census, FmSketch};

/// Mirrors `fssga_bench::DEFAULT_SEED` (the bench crate is not a
/// dependency of the facade, so the constant is pinned here too).
const SEED: u64 = 0xF55A_2006;

#[test]
fn census_path16_metrics_match_recorded_snapshot() {
    let g = generators::path(16);
    let mut rng = Xoshiro256::seed_from_u64(SEED);
    let sketches: Vec<FmSketch<8>> = (0..g.n())
        .map(|_| FmSketch::random_init(&mut rng))
        .collect();
    let mut net = Network::new(&g, Census::<8>, |v| sketches[v as usize]);
    let mut log = RoundLog::default();
    Runner::new(&mut net)
        .engine(Engine::Kernel)
        .budget(Budget::Fixpoint(160))
        .tracer(&mut log)
        .run();

    let fresh: String = log.rounds.iter().map(|r| r.to_jsonl() + "\n").collect();
    let recorded = include_str!("golden/census_path16_metrics.jsonl");
    assert_eq!(
        fresh, recorded,
        "per-round metrics drifted from the golden snapshot; if the \
         change is intentional, regenerate with `fssga-bench golden`"
    );
}
