//! Cross-crate property tests for Theorem 3.7: random mod-thresh programs
//! are converted through all three presentations and checked for
//! extensional equality, and the symmetry decision procedures are
//! validated against brute force.
//!
//! The deterministic suites below always run (tier-1, offline); the
//! original `proptest` strategies are kept behind the `proptest` feature
//! (see the root `Cargo.toml` for how to re-enable them).

use fssga::core::convert::{mt_to_par, mt_to_seq, par_to_seq, seq_to_mt};
use fssga::core::equiv::{decide_equiv_seq, first_disagreement};
use fssga::core::modthresh::{ModThreshProgram, Prop};
use fssga::core::multiset::Multiset;
use fssga::core::tree::permutations;
use fssga::core::CombTree;
use fssga::graph::rng::Xoshiro256;

/// Deterministic random atom over `s` states with small parameters
/// (mirrors the proptest strategy below).
fn rand_atom(rng: &mut Xoshiro256, s: usize) -> Prop {
    let q = rng.gen_index(s);
    if rng.coin() {
        Prop::below(q, 1 + rng.gen_range(3))
    } else {
        let m = 2 + rng.gen_range(2);
        Prop::mod_count(q, rng.gen_range(m), m)
    }
}

/// Deterministic random proposition of depth <= `depth`.
fn rand_prop(rng: &mut Xoshiro256, s: usize, depth: u32) -> Prop {
    if depth == 0 || rng.gen_range(3) == 0 {
        return rand_atom(rng, s);
    }
    match rng.gen_range(3) {
        0 => {
            let kids = (0..1 + rng.gen_index(2))
                .map(|_| rand_prop(rng, s, depth - 1))
                .collect();
            Prop::And(kids)
        }
        1 => {
            let kids = (0..1 + rng.gen_index(2))
                .map(|_| rand_prop(rng, s, depth - 1))
                .collect();
            Prop::Or(kids)
        }
        _ => Prop::Not(Box::new(rand_prop(rng, s, depth - 1))),
    }
}

/// Deterministic random mod-thresh program over 2 states, 2 outputs.
fn rand_mt(rng: &mut Xoshiro256) -> ModThreshProgram {
    let clauses: Vec<(Prop, usize)> = (0..rng.gen_index(3))
        .map(|_| (rand_prop(rng, 2, 2), rng.gen_index(2)))
        .collect();
    let default = rng.gen_index(2);
    ModThreshProgram::new(2, 2, clauses, default).expect("valid by construction")
}

/// mt -> par -> seq -> mt' round trips preserve the function.
#[test]
fn conversions_preserve_function_deterministic() {
    let mut rng = Xoshiro256::seed_from_u64(0x37_2006);
    for trial in 0..32 {
        let mt = rand_mt(&mut rng);
        let par = mt_to_par(&mt, 1 << 22).expect("small parameters fit");
        let seq = par_to_seq(&par);
        assert!(
            seq.is_sm(),
            "trial {trial}: converted seq program must be SM"
        );
        let mt2 = seq_to_mt(&seq, 1 << 22).expect("fits");
        // Exhaustive comparison over a range that covers all periods (<= 4)
        // and thresholds (<= 4) in play: counts up to 12 total.
        for ms in Multiset::enumerate_up_to(2, 12) {
            assert_eq!(
                mt.eval_multiset(&ms),
                par.eval_multiset(&ms),
                "trial {trial}"
            );
            assert_eq!(
                mt.eval_multiset(&ms),
                seq.eval_multiset(&ms),
                "trial {trial}"
            );
            assert_eq!(
                mt.eval_multiset(&ms),
                mt2.eval_multiset(&ms),
                "trial {trial}"
            );
        }
    }
}

/// The complete sequential-equivalence decision agrees with exhaustive
/// search on converted programs.
#[test]
fn equivalence_decision_sound_deterministic() {
    let mut rng = Xoshiro256::seed_from_u64(0xE0_1234);
    for trial in 0..24 {
        let mt = rand_mt(&mut rng);
        let seq_a = mt_to_seq(&mt, 1 << 22).expect("fits");
        let seq_b = par_to_seq(&mt_to_par(&mt, 1 << 22).unwrap());
        let verdict = decide_equiv_seq(&seq_a, &seq_b, 1 << 22).expect("decidable");
        assert!(
            verdict.is_none(),
            "trial {trial}: same function must be decided equal"
        );
        assert!(
            first_disagreement(&seq_a, &seq_b, 10).is_none(),
            "trial {trial}"
        );
    }
}

/// Parallel programs from Lemma 3.8 are tree- and order-invariant
/// (Definition 3.4), tested by direct enumeration.
#[test]
fn parallel_invariance_deterministic() {
    let mut rng = Xoshiro256::seed_from_u64(0x138);
    for trial in 0..16 {
        let mt = rand_mt(&mut rng);
        let par = mt_to_par(&mt, 1 << 22).unwrap();
        let k = 1 + rng.gen_index(5);
        let inputs: Vec<usize> = (0..k).map(|_| rng.gen_index(2)).collect();
        let expected = par.eval_seq(&inputs);
        for tree in CombTree::enumerate_all(k) {
            for perm in permutations(k) {
                let permuted: Vec<usize> = perm.iter().map(|&i| inputs[i]).collect();
                assert_eq!(
                    par.eval_with_tree(&tree, &permuted),
                    expected,
                    "trial {trial}"
                );
            }
        }
    }
}

/// check_sm agrees with brute force on random tiny table programs.
#[test]
fn seq_check_sm_complete_deterministic() {
    let mut rng = Xoshiro256::seed_from_u64(0x5E9_C4ECC);
    for trial in 0..200 {
        let ptab: Vec<u32> = (0..6).map(|_| rng.gen_range(3) as u32).collect();
        let beta: Vec<u32> = (0..3).map(|_| rng.gen_range(2) as u32).collect();
        let seq = fssga::core::SeqProgram::new(2, 3, 2, 0, ptab, beta).unwrap();
        let verdict = seq.is_sm();
        // Brute force over all sequences of length <= 6.
        let mut brute = true;
        'outer: for len in 1..=6usize {
            for bits in 0..(1u32 << len) {
                let s: Vec<usize> = (0..len).map(|i| ((bits >> i) & 1) as usize).collect();
                let mut sorted = s.clone();
                sorted.sort_unstable();
                if seq.eval_seq(&s) != seq.eval_seq(&sorted) {
                    brute = false;
                    break 'outer;
                }
            }
        }
        // check_sm is complete: accept => brute-force can find no witness.
        if verdict {
            assert!(brute, "trial {trial}");
        }
        // And sound at this depth: a brute-force witness => rejection.
        if !brute {
            assert!(!verdict, "trial {trial}");
        }
    }
}

#[test]
fn bounded_degree_embedding_note() {
    // Sanity link to the paper's bounded-degree remark: a mod-thresh
    // program evaluated on multisets of size <= Δ behaves like the
    // ε-padded bounded-degree automaton. We check against the engine view.
    use fssga::engine::NeighborView;
    use fssga::protocols::two_coloring::Color;
    let counts = [1u32, 1, 0, 0];
    let view: NeighborView<'_, Color> = NeighborView::over(&counts);
    assert!(view.some(Color::Blank));
    assert!(view.some(Color::Red));
    assert!(view.none(Color::Failed));
}

/// Randomized originals, kept for `--features proptest` runs.
#[cfg(feature = "proptest")]
mod proptest_suite {
    use super::*;
    use proptest::prelude::*;

    /// Strategy: a random atom over `s` states with small parameters.
    fn atom(s: usize) -> impl Strategy<Value = Prop> {
        prop_oneof![
            (0..s, 1u64..4).prop_map(|(q, t)| Prop::below(q, t)),
            (0..s, 0u64..3, 2u64..4).prop_map(|(q, r, m)| Prop::mod_count(q, r % m, m)),
        ]
    }

    /// Strategy: a random proposition of depth <= 2.
    fn prop_tree(s: usize) -> impl Strategy<Value = Prop> {
        let leaf = atom(s);
        leaf.prop_recursive(2, 8, 3, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 1..3).prop_map(Prop::And),
                prop::collection::vec(inner.clone(), 1..3).prop_map(Prop::Or),
                inner.prop_map(|p| Prop::Not(Box::new(p))),
            ]
        })
    }

    /// Strategy: a random mod-thresh program over 2 states, 2 outputs.
    fn mt_program() -> impl Strategy<Value = ModThreshProgram> {
        (
            prop::collection::vec((prop_tree(2), 0usize..2), 0..3),
            0usize..2,
        )
            .prop_map(|(clauses, default)| {
                ModThreshProgram::new(2, 2, clauses, default).expect("valid by construction")
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// mt -> par -> seq -> mt' round trips preserve the function.
        #[test]
        fn conversions_preserve_function(mt in mt_program()) {
            let par = mt_to_par(&mt, 1 << 22).expect("small parameters fit");
            let seq = par_to_seq(&par);
            prop_assert!(seq.is_sm(), "converted sequential program must be SM");
            let mt2 = seq_to_mt(&seq, 1 << 22).expect("fits");
            for ms in Multiset::enumerate_up_to(2, 12) {
                prop_assert_eq!(mt.eval_multiset(&ms), par.eval_multiset(&ms));
                prop_assert_eq!(mt.eval_multiset(&ms), seq.eval_multiset(&ms));
                prop_assert_eq!(mt.eval_multiset(&ms), mt2.eval_multiset(&ms));
            }
        }

        /// The complete sequential-equivalence decision agrees with
        /// exhaustive search on converted programs.
        #[test]
        fn equivalence_decision_sound(mt in mt_program()) {
            let seq_a = mt_to_seq(&mt, 1 << 22).expect("fits");
            let seq_b = par_to_seq(&mt_to_par(&mt, 1 << 22).unwrap());
            let verdict = decide_equiv_seq(&seq_a, &seq_b, 1 << 22).expect("decidable");
            prop_assert!(verdict.is_none(), "same function must be decided equal");
            prop_assert!(first_disagreement(&seq_a, &seq_b, 10).is_none());
        }

        /// Parallel programs from Lemma 3.8 are tree- and order-invariant
        /// (Definition 3.4), tested by direct enumeration.
        #[test]
        fn parallel_invariance(mt in mt_program(), inputs in prop::collection::vec(0usize..2, 1..6)) {
            let par = mt_to_par(&mt, 1 << 22).unwrap();
            let k = inputs.len();
            let expected = par.eval_seq(&inputs);
            for tree in CombTree::enumerate_all(k) {
                for perm in permutations(k) {
                    let permuted: Vec<usize> = perm.iter().map(|&i| inputs[i]).collect();
                    prop_assert_eq!(par.eval_with_tree(&tree, &permuted), expected);
                }
            }
        }

        /// check_sm accepts exactly the order-invariant random table
        /// programs (cross-validation on tiny alphabets).
        #[test]
        fn seq_check_sm_complete(
            ptab in prop::collection::vec(0u32..3, 6),
            beta in prop::collection::vec(0u32..2, 3),
        ) {
            let seq = fssga::core::SeqProgram::new(2, 3, 2, 0, ptab, beta).unwrap();
            let verdict = seq.is_sm();
            let mut brute = true;
            'outer: for len in 1..=6usize {
                for bits in 0..(1u32 << len) {
                    let s: Vec<usize> = (0..len).map(|i| ((bits >> i) & 1) as usize).collect();
                    let mut sorted = s.clone();
                    sorted.sort_unstable();
                    if seq.eval_seq(&s) != seq.eval_seq(&sorted) {
                        brute = false;
                        break 'outer;
                    }
                }
            }
            if verdict {
                prop_assert!(brute);
            }
            if !brute {
                prop_assert!(!verdict);
            }
        }
    }
}
