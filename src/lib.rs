//! # fssga — Symmetric Network Computation
//!
//! A Rust reproduction of *"Symmetric Network Computation"* (David
//! Pritchard and Santosh Vempala, SPAA 2006): the finite-state symmetric
//! graph automaton (FSSGA) model, the equivalence theorem for symmetric
//! multi-input functions, the paper's algorithm portfolio, the
//! k-sensitivity fault-tolerance framework, and the isotonic-web-automaton
//! simulations.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`graph`] — graph substrate: CSR graphs, generators, exact oracles,
//!   fault surgery, deterministic RNG.
//! * [`core`] — the paper's Section 3: sequential / parallel / mod-thresh
//!   SM programs and the constructive Theorem 3.7 conversions, plus the
//!   FSSGA automaton definitions — and the §5 extensions (semi-lattice
//!   detection, mod-atom essentiality, program minimization, tape
//!   families).
//! * [`engine`] — Section 3.4 "running": synchronous and asynchronous
//!   schedulers, the model-enforcing `NeighborView`, fault injection, and
//!   the Section 2 sensitivity harness.
//! * [`protocols`] — Sections 1, 2 and 4: census, bridge finding, shortest
//!   paths, 2-colouring, the α synchronizer, BFS, the random walk, Milgram
//!   and greedy-tourist traversals, and randomized leader election.
//! * [`iwa`] — Section 5.1: isotonic web automata and the mutual
//!   simulations between IWA and FSSGA.
//! * [`serve`] — the always-on simulation service: framed TCP job
//!   protocol, per-job budgets with watchdog cancellation, backpressure,
//!   and streamed per-round metrics (DESIGN.md §12).
//! * [`verify`] — bounded exhaustive model checking of the protocols'
//!   semantic contracts: confluence / order-independence, semantic
//!   totality within declared query bounds, and sensitivity-class
//!   certification, with minimized replayable witnesses.
//!
//! ## Quickstart
//!
//! ```
//! use fssga::graph::generators;
//! use fssga::engine::{Budget, Network, Runner};
//! use fssga::protocols::two_coloring::{TwoColoring, Color};
//!
//! // Is a 6-cycle bipartite? Run the paper's Section 4.1 automaton.
//! let g = generators::cycle(6);
//! let mut net = Network::new(&g, &TwoColoring, |v| TwoColoring::init(v == 0));
//! let rounds = Runner::new(&mut net).budget(Budget::Fixpoint(100)).run().fixpoint.expect("converges");
//! assert!(rounds <= 100);
//! assert!(net.states().iter().all(|&s| s != Color::Failed));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fssga_analysis as analysis;
pub use fssga_core as core;
pub use fssga_engine as engine;
pub use fssga_graph as graph;
pub use fssga_iwa as iwa;
pub use fssga_protocols as protocols;
pub use fssga_serve as serve;
pub use fssga_verify as verify;
