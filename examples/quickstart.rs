//! Quickstart: run two FSSGA algorithms on a small network.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! 1. The Section 4.1 two-colouring automaton decides bipartiteness.
//! 2. The Section 1 Flajolet–Martin census estimates the network size —
//!    and keeps working after we cut the network in half.

use fssga::engine::{Budget, Network, Runner};
use fssga::graph::generators;
use fssga::graph::rng::Xoshiro256;
use fssga::protocols::census::{Census, FmSketch};
use fssga::protocols::two_coloring::{outcome, TwoColoring};

fn main() {
    // --- 1. Bipartiteness by 2-colouring -------------------------------
    println!("== two-colouring (Section 4.1) ==");
    for (name, g) in [
        ("6x7 grid", generators::grid(6, 7)),
        ("9-cycle", generators::cycle(9)),
    ] {
        let mut net = Network::new(&g, TwoColoring, |v| TwoColoring::init(v == 0));
        let rounds = Runner::new(&mut net)
            .budget(Budget::Fixpoint(10 * g.n()))
            .run()
            .fixpoint
            .expect("two-colouring always stabilizes");
        println!(
            "{name}: {:?} after {rounds} synchronous rounds",
            outcome(net.states())
        );
    }

    // --- 2. Census by OR-diffusion --------------------------------------
    println!();
    println!("== Flajolet-Martin census (Section 1) ==");
    let mut rng = Xoshiro256::seed_from_u64(2006);
    let n = 400;
    let g = generators::connected_gnp(n, 0.02, &mut rng);
    let sketches: Vec<FmSketch<16>> = (0..n).map(|_| FmSketch::random_init(&mut rng)).collect();
    let mut net = Network::new(&g, Census::<16>, |v| sketches[v as usize]);
    {
        let mut probe = Network::new(&g, Census::<16>, |v| sketches[v as usize]);
        let rounds = Runner::new(&mut probe)
            .budget(Budget::Fixpoint(10 * n))
            .run()
            .fixpoint
            .unwrap();
        println!(
            "n = {n}: every node estimates {:.0} after {rounds} rounds",
            probe.state(0).estimate()
        );
    }

    // Benign faults: cut the graph EARLY (after one round of diffusion);
    // each half then converges to an estimate of its own side.
    net.sync_step(&mut rng);
    let mid_edges: Vec<_> = net.graph().edges().collect();
    for (u, v) in mid_edges {
        if (u < (n / 2) as u32) != (v < (n / 2) as u32) {
            net.remove_edge(u, v);
        }
    }
    Runner::new(&mut net)
        .budget(Budget::Fixpoint(10 * n))
        .run()
        .fixpoint
        .unwrap();
    let left = net.state(0).estimate();
    let right = net.state((n - 1) as u32).estimate();
    println!("after partition: left half estimates {left:.0}, right half {right:.0}");
    println!("(0-sensitivity: whatever stays connected keeps converging)");
}
