//! Milgram's traversal (Section 4.5) vs the greedy tourist (Section 4.6)
//! under fault injection — the paper's sensitivity story in action.
//!
//! Both agents traverse the same graph. Then we kill one node that is
//! *not* the agent: Milgram's arm is Θ(n) critical nodes, so the fault
//! usually severs it; the tourist's only critical node is the agent, so
//! it re-plans and finishes.
//!
//! ```text
//! cargo run --release --example traversal_race
//! ```

use fssga::graph::generators;
use fssga::graph::rng::Xoshiro256;
use fssga::protocols::greedy_tourist::GreedyTourist;
use fssga::protocols::traversal::TraversalHarness;

fn main() {
    let mut rng = Xoshiro256::seed_from_u64(0x7A6E);
    let g = generators::grid(5, 6);
    let n = g.n();

    println!("== fault-free race on a 5x6 grid ==");
    let mut milgram = TraversalHarness::new(&g, 0);
    let run = milgram.run(200_000, &mut rng, false);
    println!(
        "Milgram: complete={} hand-moves={} (2n-2={}) rounds={}",
        run.complete,
        run.hand_moves,
        2 * n - 2,
        run.rounds
    );
    let mut tourist = GreedyTourist::new(&g, 0);
    let run = tourist.run(10_000_000, &mut rng);
    println!(
        "tourist: complete={} agent-steps={} rounds={}",
        run.complete, run.agent_steps, run.total_rounds
    );

    println!();
    println!("== same race, one mid-run node fault (never the agent) ==");
    // Milgram: let the arm grow, then kill its midpoint.
    let mut milgram = TraversalHarness::new(&g, 0);
    let _ = milgram.run(200, &mut rng, false);
    let arm = milgram.arm_path_nodes();
    if arm.len() >= 3 {
        let victim = arm[arm.len() / 2];
        println!("killing node {victim} (interior of Milgram's arm)...");
        milgram.network_mut().remove_node(victim);
    }
    let run = milgram.run(500_000, &mut rng, false);
    println!(
        "Milgram: complete={} corrupted={} (the severed arm re-grows two hands)",
        run.complete, run.corrupted
    );

    // Tourist: kill an unvisited node far from the agent.
    let mut tourist = GreedyTourist::new(&g, 0);
    let _ = tourist.run(60, &mut rng);
    let victim = (0..n as u32)
        .rev()
        .find(|&v| v != tourist.agent() && !tourist.visited()[v as usize])
        .unwrap();
    println!("killing node {victim} (unvisited, not the tourist)...");
    tourist.network_mut().remove_node(victim);
    let run = tourist.run(10_000_000, &mut rng);
    println!(
        "tourist: complete={} — it relabels and visits everything still reachable",
        run.complete
    );
}
