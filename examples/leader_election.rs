//! Randomized leader election (Section 4.7, Algorithm 4.4), end to end.
//!
//! Every node starts in the *same* state — no ids, no distinguished
//! originator — and the network elects exactly one leader by iterated
//! label-elimination phases, BFS cluster growth, Dolev recolouring and a
//! Milgram-agent timer.
//!
//! ```text
//! cargo run --release --example leader_election
//! ```

use fssga::graph::generators;
use fssga::graph::rng::Xoshiro256;
use fssga::protocols::election::ElectionHarness;

fn main() {
    let mut rng = Xoshiro256::seed_from_u64(0xE1EC);
    for (name, g) in [
        ("32-cycle".to_string(), generators::cycle(32)),
        ("6x6 grid".to_string(), generators::grid(6, 6)),
        (
            "G(64, p) random".to_string(),
            generators::connected_gnp(64, 0.15, &mut rng),
        ),
    ] {
        let mut h = ElectionHarness::new(&g);
        let run = h.run(2_000_000, &mut rng);
        let leader = run.leader.expect("election terminates w.h.p.");
        println!("== {name} (n = {}) ==", g.n());
        println!("  leader: node {leader}");
        println!("  rounds: {}   phases: {}", run.rounds, run.phases);
        println!("  candidates per phase: {:?}", run.remaining_per_phase);
        println!("  (paper: O(n log n) rounds, Θ(log n) phases, elimination rate >= 1/4)");
        println!();
    }
}
