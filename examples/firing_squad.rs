//! The §5.2 firing squad on a path, inside the FSSGA model.
//!
//! Watch the two-speed divide-and-conquer synchronize: every node enters
//! `fire` in the SAME synchronous round, even though no node can count.
//!
//! ```text
//! cargo run --release --example firing_squad
//! ```

use fssga::protocols::firing_squad::{fssp_step, run_on_path, Cell, Wall};

fn render(cells: &[Cell]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.fire {
                'F'
            } else if c.wall == Wall::Fresh {
                'G'
            } else if c.wall == Wall::Old {
                '#'
            } else if c.a_r || c.a_l {
                'a'
            } else if c.b_r > 0 || c.b_l > 0 {
                'b'
            } else {
                '.'
            }
        })
        .collect()
}

fn main() {
    let n = 24;
    println!("oriented cellular automaton, n = {n} (G/# wall, a fast, b slow, F fire):");
    let mut cells = vec![Cell::quiescent(); n];
    cells[0] = Cell::general();
    for t in 0..200 {
        println!("t={t:3}  {}", render(&cells));
        if cells.iter().all(|c| c.fire) {
            println!("*** all {n} cells fired simultaneously at t = {t} ***");
            break;
        }
        cells = fssp_step(&cells);
    }

    println!();
    println!("and as a full FSSGA protocol (mod-3 label orientation bootstrap):");
    for n in [8usize, 16, 32, 64] {
        match run_on_path(n, 40 * n + 80) {
            Some(t) => println!(
                "  path n={n:3}: all nodes fired in round {t} (~{:.2}n)",
                t as f64 / n as f64
            ),
            None => println!("  path n={n:3}: FAILED"),
        }
    }
}
