//! The paper's sensor-network motivation (Section 2.2): nodes with no
//! permanent storage route packets to the nearest data sink along
//! shortest paths, using one integer label per node — and the labels heal
//! themselves when links die.
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```

use fssga::engine::{Budget, Network, Runner};
use fssga::graph::{exact, generators};
use fssga::protocols::shortest_paths::{labels_as_distances, route_to_sink, ShortestPaths};

const CAP: usize = 256;

fn main() {
    let rows = 8;
    let cols = 12;
    let g = generators::grid(rows, cols);
    let sinks = [0u32, (rows * cols - 1) as u32]; // two data sinks, opposite corners

    let mut net = Network::new(&g, ShortestPaths::<CAP>, |v| {
        ShortestPaths::<CAP>::init(sinks.contains(&v))
    });
    let rounds = Runner::new(&mut net)
        .budget(Budget::Fixpoint(4 * CAP))
        .run()
        .fixpoint
        .unwrap();
    println!("label convergence: {rounds} rounds on a {rows}x{cols} grid with 2 sinks");

    // Route a few packets greedily along decreasing labels.
    for start in [37u32, 50, 94] {
        let path = route_to_sink(&g, net.states(), start).expect("reaches a sink");
        println!(
            "packet from {start}: {} hops via {:?}",
            path.len() - 1,
            path
        );
    }

    // Kill a corridor of links; labels re-converge and routing heals.
    println!();
    println!("cutting 6 links around the left sink...");
    let victims: Vec<_> = g
        .edges()
        .filter(|&(u, v)| u.min(v) < 3 && exact::bfs_distances(&g, &[0])[u.max(v) as usize] <= 2)
        .take(6)
        .collect();
    for (u, v) in victims {
        net.remove_edge(u, v);
    }
    let rounds = Runner::new(&mut net)
        .budget(Budget::Fixpoint(8 * CAP))
        .run()
        .fixpoint
        .unwrap();
    let snapshot = net.graph().snapshot();
    let truth = exact::bfs_distances(&snapshot, &sinks);
    let healed = labels_as_distances(net.states()) == truth;
    println!("re-converged in {rounds} rounds; labels exact again: {healed}");
    let path = route_to_sink(&snapshot, net.states(), 37).expect("still routable");
    println!(
        "packet from 37 now takes {} hops (rerouted around the cut)",
        path.len() - 1
    );
}
