//! The paper's sensor-network motivation (Section 2.2): nodes with no
//! permanent storage route packets to the nearest data sink along
//! shortest paths, using one integer label per node — and the labels heal
//! themselves when links die.
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```

use fssga::engine::{Budget, History, Network, Runner};
use fssga::graph::{exact, generators};
use fssga::protocols::shortest_paths::{labels_as_distances, route_to_sink, ShortestPaths};

const CAP: usize = 256;

fn main() {
    let rows = 8;
    let cols = 12;
    let g = generators::grid(rows, cols);
    let sinks = [0u32, (rows * cols - 1) as u32]; // two data sinks, opposite corners

    let mut net = Network::new(&g, ShortestPaths::<CAP>, |v| {
        ShortestPaths::<CAP>::init(sinks.contains(&v))
    });
    let rounds = Runner::new(&mut net)
        .budget(Budget::Fixpoint(4 * CAP))
        .run()
        .fixpoint
        .unwrap();
    println!("label convergence: {rounds} rounds on a {rows}x{cols} grid with 2 sinks");

    // Route a few packets greedily along decreasing labels.
    for start in [37u32, 50, 94] {
        let path = route_to_sink(&g, net.states(), start).expect("reaches a sink");
        println!(
            "packet from {start}: {} hops via {:?}",
            path.len() - 1,
            path
        );
    }

    // Kill a corridor of links; labels re-converge and routing heals.
    println!();
    println!("cutting 6 links around the left sink...");
    let victims: Vec<_> = g
        .edges()
        .filter(|&(u, v)| u.min(v) < 3 && exact::bfs_distances(&g, &[0])[u.max(v) as usize] <= 2)
        .take(6)
        .collect();
    for (u, v) in victims {
        net.remove_edge(u, v);
    }
    // Record the healing with a *capped* history: it decimates itself
    // (stride doubling) so even a run of hundreds of rounds retains at
    // most 12 snapshots — bounded memory, spanning the whole run.
    let mut history = History::capped(12);
    let rounds = Runner::new(&mut net)
        .budget(Budget::Fixpoint(8 * CAP))
        .record(&mut history)
        .run()
        .fixpoint
        .unwrap();
    let snapshot = net.graph().snapshot();
    let truth = exact::bfs_distances(&snapshot, &sinks);
    // The cut may isolate nodes entirely; an isolated node never
    // activates again, so its stale label is unjudgeable (and it cannot
    // route anyway) — compare only nodes that still have a live link.
    let connected: Vec<usize> = snapshot
        .nodes()
        .filter(|&v| snapshot.degree(v) > 0)
        .map(|v| v as usize)
        .collect();
    let dists = labels_as_distances(net.states());
    let healed = connected.iter().all(|&v| dists[v] == truth[v]);
    println!("re-converged in {rounds} rounds; labels exact on connected nodes: {healed}");
    println!(
        "healing front, {} retained snapshot(s) at stride {}:",
        history.len(),
        history.stride()
    );
    for i in 0..history.len() {
        let d = labels_as_distances(history.at(i));
        let exact_now = connected.iter().filter(|&&v| d[v] == truth[v]).count();
        println!(
            "  t={:3}  {exact_now}/{} labels exact",
            history.round_id(i),
            connected.len()
        );
    }
    let path = route_to_sink(&snapshot, net.states(), 37).expect("still routable");
    println!(
        "packet from 37 now takes {} hops (rerouted around the cut)",
        path.len() - 1
    );
}
