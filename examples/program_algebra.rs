//! The Section 3 program algebra: write an SM function three ways, check
//! the symmetry conditions, convert between the forms (Theorem 3.7), and
//! render the Figure 1 combination tree.
//!
//! ```text
//! cargo run --release --example program_algebra
//! ```

use fssga::core::convert::{mt_to_par, par_to_seq, seq_to_mt, DEFAULT_LIMIT};
use fssga::core::equiv::decide_equiv_seq;
use fssga::core::modthresh::{ModThreshProgram, Prop};
use fssga::core::multiset::Multiset;
use fssga::core::{CombTree, SeqProgram};

fn main() {
    // "At least two neighbours are in state 1, and an odd number are in
    // state 2" — a function needing both a thresh and a mod atom.
    // First as a mod-thresh program (Definition 3.6):
    let mt = ModThreshProgram::new(
        3,
        2,
        vec![(Prop::at_least(1, 2).and(Prop::mod_count(2, 1, 2)), 1)],
        0,
    )
    .unwrap();

    // Second as a hand-written sequential program (Definition 3.2):
    // working state = (count of 1s capped at 2) x (parity of 2s).
    let seq = SeqProgram::from_fn(
        3,
        6,
        2,
        0,
        |w, q| {
            let (ones, par) = (w / 2, w % 2);
            match q {
                1 => ((ones + 1).min(2)) * 2 + par,
                2 => ones * 2 + (1 - par),
                _ => w,
            }
        },
        |w| usize::from(w / 2 >= 2 && w % 2 == 1),
    )
    .unwrap();

    println!(
        "hand-written sequential program is SM: {:?}",
        seq.check_sm()
    );

    // Theorem 3.7 round trip: seq -> mod-thresh -> parallel -> seq.
    let mt2 = seq_to_mt(&seq, DEFAULT_LIMIT).unwrap();
    let par = mt_to_par(&mt2, DEFAULT_LIMIT).unwrap();
    let back = par_to_seq(&par);
    println!(
        "sizes: |W|seq = {}, mt clauses = {}, |W|par = {}, |W|seq' = {}",
        seq.num_working(),
        mt2.num_clauses(),
        par.num_working(),
        back.num_working()
    );
    let verdict = decide_equiv_seq(&seq, &back, 1 << 24).unwrap();
    println!("round-trip extensionally equal: {}", verdict.is_none());

    // The derived decision list, rendered in the paper's Definition 3.6
    // style (after exact dead-clause elimination):
    println!();
    println!("derived mod-thresh program (simplified):");
    println!("{}", mt2.simplified(1 << 20).unwrap());

    // And against the independent mod-thresh spec:
    let agree = (0..500).all(|i| {
        let ms = Multiset::from_counts(vec![i % 7, (i / 7) % 9, (i / 63) % 11]);
        ms.is_empty() || mt.eval_multiset(&ms) == seq.eval_multiset(&ms)
    });
    println!("matches the independent mod-thresh spec: {agree}");

    // Figure 1: evaluate the parallel program over an explicit tree.
    println!();
    println!("Figure 1: parallel evaluation of [1,1,2,2,2] over a balanced tree");
    let tree = CombTree::balanced(5);
    let inputs = [1usize, 1, 2, 2, 2];
    let lifted: Vec<usize> = inputs.iter().map(|&q| par.lift(q)).collect();
    let mut comb = |a: usize, b: usize| par.combine(a, b);
    let mut show = |w: usize| format!("w{w}");
    println!("{}", tree.render_evaluated(&lifted, &mut comb, &mut show));
    println!(
        "result: {} (two 1s and an odd number of 2s -> expect 1)",
        par.eval_with_tree(&tree, &inputs)
    );
}
